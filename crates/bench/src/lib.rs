//! Shared infrastructure for the experiment harness.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (see DESIGN.md's per-experiment index); this library
//! holds the pieces they share: dataset caching with sensible default
//! scaling, simple table/CSV emitters, and the common parameter grids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use network_shuffle::accountant::closed_form::AccountantParams;
use network_shuffle::accountant::NetworkShuffleAccountant;
use network_shuffle::protocol::ProtocolKind;
use ns_datasets::{Dataset, GeneratedDataset};
use std::io::Write;
use std::path::PathBuf;

/// Default δ used throughout the experiments (also the paper's choice of
/// "δ smaller than 1/n" for the populations considered).
pub const DELTA: f64 = 1e-6;

/// Seed used by all experiment binaries so results are reproducible.
pub const SEED: u64 = 20220408; // arXiv submission date of the paper.

/// The environment-independent base divisor of a dataset: the four smaller
/// graphs are generated at full scale; the Google web graph is scaled down
/// 10× (full scale is supported but takes several minutes of spectral
/// analysis).
pub fn base_scale_divisor(dataset: Dataset) -> usize {
    match dataset {
        Dataset::Google => 10,
        _ => 1,
    }
}

/// Returns the scale divisor to apply to a dataset.
///
/// Defaults to [`base_scale_divisor`].  Set `NS_BENCH_SCALE` to an integer
/// `k` to further divide every dataset by `k` (useful for smoke tests), or
/// to `full` to force full scale everywhere.
pub fn scale_divisor(dataset: Dataset) -> usize {
    let base = base_scale_divisor(dataset);
    match std::env::var("NS_BENCH_SCALE") {
        Ok(v) if v.eq_ignore_ascii_case("full") => 1,
        Ok(v) => base * v.parse::<usize>().unwrap_or(1).max(1),
        Err(_) => base,
    }
}

/// Generates (or regenerates) a dataset stand-in at the default scale.
///
/// # Panics
///
/// Panics if generation fails — experiment binaries treat that as fatal.
pub fn dataset_graph(dataset: Dataset) -> GeneratedDataset {
    let divisor = scale_divisor(dataset);
    dataset.generate_scaled(divisor, SEED).unwrap_or_else(|e| {
        panic!("failed to generate {dataset} stand-in (divisor {divisor}): {e}")
    })
}

/// A dataset stand-in paired with the privacy accountant of its ergodic
/// walk — the starting point of almost every accountant experiment.
pub struct DatasetAccountant {
    /// The generated graph plus its spec/achieved statistics.
    pub generated: GeneratedDataset,
    /// The accountant bound to `generated.graph`.
    pub accountant: NetworkShuffleAccountant,
}

impl DatasetAccountant {
    /// The dataset's display name.
    pub fn name(&self) -> &'static str {
        self.generated.spec.name
    }
}

/// Generates one dataset at the default scale and binds an accountant to
/// it — the construction boilerplate shared by the figure/ablation
/// binaries.  Emits nothing on stdout, so callers control their own
/// per-dataset log lines.
///
/// # Panics
///
/// Panics if generation fails or the stand-in is not ergodic — experiment
/// binaries treat both as fatal.
pub fn dataset_accountant(dataset: Dataset) -> DatasetAccountant {
    let generated = dataset_graph(dataset);
    let accountant = NetworkShuffleAccountant::new(&generated.graph).expect("ergodic graph");
    DatasetAccountant {
        generated,
        accountant,
    }
}

/// The largest extra divisor at which each dataset's Chung–Lu calibration
/// still hits its Table 4 irregularity target: high-Γ degree sequences
/// (Enron especially) are not realizable at small `n`, so the reproducible
/// small-scale variants clamp here instead of failing.
pub fn max_reduced_divisor(dataset: Dataset) -> usize {
    match dataset {
        Dataset::Facebook | Dataset::Deezer => 40,
        Dataset::Twitch | Dataset::Google => 20,
        Dataset::Enron => 2,
    }
}

/// [`dataset_accountant`] at an explicit, environment-independent scale:
/// the dataset is divided by `base_scale_divisor(dataset) * extra_divisor`
/// (clamped to [`max_reduced_divisor`]) regardless of `NS_BENCH_SCALE`.
/// This is the entry point of the golden figure-regression tests, which
/// need bit-reproducible small-n variants.
///
/// # Panics
///
/// See [`dataset_accountant`].
pub fn dataset_accountant_scaled(dataset: Dataset, extra_divisor: usize) -> DatasetAccountant {
    let divisor =
        base_scale_divisor(dataset) * extra_divisor.clamp(1, max_reduced_divisor(dataset));
    let generated = dataset.generate_scaled(divisor, SEED).unwrap_or_else(|e| {
        panic!("failed to generate {dataset} stand-in (divisor {divisor}): {e}")
    });
    let accountant = NetworkShuffleAccountant::new(&generated.graph).expect("ergodic graph");
    DatasetAccountant {
        generated,
        accountant,
    }
}

/// [`dataset_accountant`] over a list of datasets.
///
/// # Panics
///
/// See [`dataset_accountant`].
pub fn dataset_accountants(datasets: impl IntoIterator<Item = Dataset>) -> Vec<DatasetAccountant> {
    datasets.into_iter().map(dataset_accountant).collect()
}

/// A figure's tabular output: headers, rows and the per-dataset diagnostic
/// lines the binaries print above the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigTable {
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (stringified cells, one inner vec per row).
    pub rows: Vec<Vec<String>>,
    /// Free-form diagnostic lines (dataset sizes, spectral gaps, …).
    pub notes: Vec<String>,
}

impl FigTable {
    /// The exact CSV serialization [`write_csv`] would produce — the
    /// bit-for-bit comparison unit of the golden regression tests.
    pub fn csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// How a figure computation scales its datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigScale {
    /// The environment-aware default ([`scale_divisor`]).
    Default,
    /// `base_scale_divisor * k`, ignoring the environment — the
    /// reproducible small-n variant used by the golden tests.
    Reduced(usize),
}

impl FigScale {
    fn accountant(self, dataset: Dataset) -> DatasetAccountant {
        match self {
            FigScale::Default => dataset_accountant(dataset),
            FigScale::Reduced(extra) => dataset_accountant_scaled(dataset, extra),
        }
    }
}

/// The Figure 4 computation (central ε of `A_all` under the stationary
/// bound vs. communication rounds, ε₀ = 2, Facebook/Twitch/Deezer) as a
/// reusable table — the `fig4` binary prints and persists it, the golden
/// regression test pins its small-scale variant bit for bit.
pub fn fig4_table(scale: FigScale) -> FigTable {
    let epsilon_0 = 2.0;
    let datasets = [Dataset::Facebook, Dataset::Twitch, Dataset::Deezer];

    // Sweep points: log-spaced rounds up to ~2x the largest mixing time.
    let sweeps: Vec<DatasetAccountant> = datasets
        .into_iter()
        .map(|dataset| scale.accountant(dataset))
        .collect();
    let max_mixing = sweeps
        .iter()
        .map(|da| da.accountant.mixing_time())
        .max()
        .unwrap_or(0);
    let max_rounds = (2 * max_mixing).max(10);
    let checkpoints: Vec<usize> = {
        let mut t = 1usize;
        let mut out = Vec::new();
        while t <= max_rounds {
            out.push(t);
            t = ((t as f64) * 1.6).ceil() as usize;
        }
        out.push(max_rounds);
        out.dedup();
        out
    };

    let mut notes = Vec::new();
    let mut columns: Vec<Vec<(usize, f64)>> = Vec::new();
    for da in &sweeps {
        let accountant = &da.accountant;
        let params = AccountantParams::new(accountant.node_count(), epsilon_0, DELTA, DELTA)
            .expect("valid params");
        let sweep = accountant
            .epsilon_vs_rounds(
                network_shuffle::protocol::ProtocolKind::All,
                network_shuffle::accountant::Scenario::Stationary,
                &params,
                max_rounds,
            )
            .expect("sweep");
        notes.push(format!(
            "{}: n = {}, spectral gap = {:.4}, mixing time = {}",
            da.name(),
            accountant.node_count(),
            accountant.mixing_profile().spectral_gap,
            accountant.mixing_time()
        ));
        columns.push(sweep);
    }

    let mut rows = Vec::new();
    for &t in &checkpoints {
        let mut row = vec![t.to_string()];
        for column in &columns {
            row.push(fmt(column[t - 1].1));
        }
        rows.push(row);
    }

    FigTable {
        headers: std::iter::once("rounds t".to_string())
            .chain(sweeps.iter().map(|da| format!("{} eps", da.name())))
            .collect(),
        rows,
        notes,
    }
}

/// The Figure 6 computation (amplified ε vs. ε₀ for the five datasets,
/// `A_all` at each graph's mixing time) as a reusable table; see
/// [`fig4_table`] for the split between binary and golden test.
pub fn fig6_table(scale: FigScale) -> FigTable {
    let epsilon_grid = linspace(0.1, 1.2, 12);

    let accountants: Vec<DatasetAccountant> = Dataset::ALL
        .into_iter()
        .map(|dataset| scale.accountant(dataset))
        .collect();
    let notes = accountants
        .iter()
        .map(|da| {
            format!(
                "{}: n = {}, Gamma = {:.3}, mixing time = {}",
                da.name(),
                da.accountant.node_count(),
                da.generated.achieved.irregularity,
                da.accountant.mixing_time()
            )
        })
        .collect();

    let headers: Vec<String> = std::iter::once("eps0".to_string())
        .chain(accountants.iter().map(|da| format!("{} eps", da.name())))
        .collect();

    let mut rows = Vec::new();
    for &eps0 in &epsilon_grid {
        let mut row = vec![fmt(eps0)];
        for da in &accountants {
            row.push(fmt(epsilon_at_mixing_time(
                &da.accountant,
                network_shuffle::protocol::ProtocolKind::All,
                eps0,
            )));
        }
        rows.push(row);
    }

    FigTable {
        headers,
        rows,
        notes,
    }
}

/// Central ε at the graph's mixing time under the stationary bound with the
/// experiment-default δs — the sweep kernel of the ε₀-grid figures.
///
/// # Panics
///
/// Panics on parameter or accountant errors (fatal in experiment binaries).
pub fn epsilon_at_mixing_time(
    accountant: &NetworkShuffleAccountant,
    protocol: ProtocolKind,
    epsilon_0: f64,
) -> f64 {
    let params = AccountantParams::new(accountant.node_count(), epsilon_0, DELTA, DELTA)
        .expect("valid params");
    accountant
        .central_guarantee_at_mixing_time(
            protocol,
            network_shuffle::accountant::Scenario::Stationary,
            &params,
        )
        .expect("guarantee")
        .epsilon
}

/// Prints a fixed-width table with a header row and a separator.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain([h.len()])
                .max()
                .unwrap_or(0)
        })
        .collect();
    let render = |cells: &[String]| {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", render(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", render(row));
    }
}

/// Writes rows as a CSV file under `results/` (created on demand) and
/// returns the path.  Failures are printed but not fatal — the tables are
/// always also printed to stdout.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut file = match std::fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warning: could not create {}: {e}", path.display());
            return None;
        }
    };
    let mut write_line = |cells: &[String]| writeln!(file, "{}", cells.join(","));
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    if write_line(&header_cells).is_err() {
        return None;
    }
    for row in rows {
        if write_line(row).is_err() {
            return None;
        }
    }
    println!("wrote results/{name}.csv");
    Some(path)
}

/// Resolves a bench binary's output path: the `env_key` override when set
/// to a non-empty value, otherwise `default`.  Every `NS_*_OUT` knob goes
/// through here so the override semantics stay uniform across binaries.
pub fn bench_output_path(env_key: &str, default: &str) -> PathBuf {
    match std::env::var(env_key) {
        Ok(value) if !value.trim().is_empty() => PathBuf::from(value),
        _ => PathBuf::from(default),
    }
}

/// Writes a `BENCH_*.json` artifact: the pre-rendered flat `entries` as a
/// JSON array, closed with one `{"bench": "telemetry", ...}` entry
/// embedding the metric snapshot of the registry the run was instrumented
/// with.  Both bench binaries (`roundloop`, `churn_soak`) route their
/// output through here, so every artifact carries the phase-time and
/// counter telemetry it was produced under alongside the measurements.
///
/// `entries` are raw JSON objects (the workspace serde shim is a no-op, so
/// callers hand-write their bytes); leading whitespace is normalised to a
/// two-space indent.
pub fn write_bench_json(
    path: &std::path::Path,
    entries: &[String],
    telemetry: &ns_obs::MetricsRegistry,
) -> std::io::Result<()> {
    let mut all: Vec<String> = entries
        .iter()
        .map(|e| format!("  {}", e.trim_start()))
        .collect();
    all.push(format!(
        "  {{\"bench\": \"telemetry\", \"metrics\": {}}}",
        telemetry.render_json()
    ));
    std::fs::write(path, format!("[\n{}\n]\n", all.join(",\n")))
}

/// Formats a float with 4 significant-ish decimals for table cells.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// An inclusive linear grid of `points` values from `lo` to `hi`.
pub fn linspace(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    if points <= 1 {
        return vec![lo];
    }
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_bench_json_appends_the_telemetry_entry() {
        let registry = ns_obs::MetricsRegistry::new();
        registry.counter("ns_test_counter").add(7);
        let dir = std::env::temp_dir().join(format!("ns_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let entries = vec!["{\"bench\": \"x\", \"v\": 1}".to_string()];
        write_bench_json(&path, &entries, &registry).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(text.starts_with("[\n"), "array open: {text}");
        assert!(text.ends_with("]\n"), "array close: {text}");
        assert!(
            text.contains("  {\"bench\": \"x\", \"v\": 1},\n"),
            "entry kept: {text}"
        );
        assert!(
            text.contains("{\"bench\": \"telemetry\", \"metrics\": {\"ns_test_counter\": 7}}"),
            "telemetry embedded: {text}"
        );
    }

    #[test]
    fn linspace_endpoints() {
        let g = linspace(0.2, 2.0, 10);
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.2).abs() < 1e-12);
        assert!((g[9] - 2.0).abs() < 1e-12);
        assert_eq!(linspace(1.0, 2.0, 1), vec![1.0]);
    }

    #[test]
    fn fmt_covers_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(0.1234567).starts_with("0.1235"));
        assert!(fmt(12345.0).contains('e'));
        assert!(fmt(1e-7).contains('e'));
    }

    #[test]
    fn bench_output_path_honors_the_env_override() {
        // A key no other test (or the environment) touches.
        let key = "NS_BENCH_OUTPUT_PATH_TEST_OUT";
        std::env::remove_var(key);
        assert_eq!(
            bench_output_path(key, "BENCH_default.json"),
            PathBuf::from("BENCH_default.json")
        );
        std::env::set_var(key, "custom/dir/out.json");
        assert_eq!(
            bench_output_path(key, "BENCH_default.json"),
            PathBuf::from("custom/dir/out.json")
        );
        // Blank overrides fall back instead of producing an empty path.
        std::env::set_var(key, "  ");
        assert_eq!(
            bench_output_path(key, "BENCH_default.json"),
            PathBuf::from("BENCH_default.json")
        );
        std::env::remove_var(key);
    }

    #[test]
    fn default_scale_divisors() {
        // Without the env var set, only Google is scaled down.
        if std::env::var("NS_BENCH_SCALE").is_err() {
            assert_eq!(scale_divisor(Dataset::Twitch), 1);
            assert_eq!(scale_divisor(Dataset::Google), 10);
        }
    }
}
