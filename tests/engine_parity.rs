//! Parity and scale tests for the batched mixing engine.
//!
//! The refactor's contract: the struct-of-arrays engine must be a drop-in
//! replacement for the historical per-object round loops — same seed, same
//! trajectories, same submissions, same metrics — while scaling to
//! populations the object-graph path cannot touch.

use network_shuffle::prelude::*;
use network_shuffle::simulation::reference::run_protocol_reference;
use network_shuffle::simulation::SimulationOutcome;
use ns_graph::mixing_engine::MixingEngine;
use ns_graph::walk::{WalkConfig, WalkEngine};
use ns_graph::NodeId;
use rand::Rng;

/// The pre-refactor `WalkEngine::step`, kept verbatim as the old behaviour.
fn legacy_walk_step<R: Rng + ?Sized>(
    graph: &ns_graph::Graph,
    positions: &mut [NodeId],
    laziness: f64,
    rng: &mut R,
) {
    for pos in positions.iter_mut() {
        if laziness > 0.0 && rng.gen::<f64>() < laziness {
            continue;
        }
        let nbrs = graph.neighbors(*pos);
        *pos = nbrs[rng.gen_range(0..nbrs.len())] as NodeId;
    }
}

/// Walk layer: the adapter (and thus the engine's walker-order rounds)
/// reproduces the pre-refactor walk trajectories draw for draw.
#[test]
fn walk_engine_positions_match_legacy_loop() {
    let mut graph_rng = ns_graph::rng::seeded_rng(1);
    let graph = ns_graph::generators::random_regular(800, 6, &mut graph_rng).unwrap();
    for (seed, laziness, rounds) in [(7u64, 0.0, 40), (8, 0.25, 40), (9, 0.7, 15)] {
        let mut engine = WalkEngine::one_walker_per_node(&graph).unwrap();
        let mut engine_rng = ns_graph::rng::seeded_rng(seed);
        engine
            .run(WalkConfig::lazy(rounds, laziness), &mut engine_rng)
            .unwrap();

        let mut legacy: Vec<NodeId> = graph.nodes().collect();
        let mut legacy_rng = ns_graph::rng::seeded_rng(seed);
        for _ in 0..rounds {
            legacy_walk_step(&graph, &mut legacy, laziness, &mut legacy_rng);
        }
        let widened: Vec<NodeId> = engine.positions().iter().map(|&p| p as NodeId).collect();
        assert_eq!(
            widened.as_slice(),
            legacy.as_slice(),
            "divergence at seed={seed} laziness={laziness}"
        );
    }
}

fn curator_view<P: Copy>(outcome: &SimulationOutcome<P>) -> Vec<(usize, usize, bool, P)> {
    outcome
        .collected
        .reports_with_submitter()
        .map(|(submitter, report)| (submitter, report.origin, report.is_dummy, report.payload))
        .collect()
}

/// Protocol layer: batched engine path vs. per-client reference loop, across
/// protocols, laziness levels and seeds — identical submissions (submitter,
/// origin, dummy flag, payload) and identical traffic metrics.
#[test]
fn protocol_outcomes_match_reference_loop() {
    let mut graph_rng = ns_graph::rng::seeded_rng(2);
    let graph = ns_graph::generators::random_regular(300, 8, &mut graph_rng).unwrap();
    let cases = [
        (ProtocolKind::All, 0.0, 25, 101u64),
        (ProtocolKind::All, 0.3, 25, 102),
        (ProtocolKind::Single, 0.0, 25, 103),
        (ProtocolKind::Single, 0.3, 25, 104),
        (ProtocolKind::All, 0.0, 0, 105),
        (ProtocolKind::Single, 0.0, 0, 106),
    ];
    for (protocol, laziness, rounds, seed) in cases {
        let config = SimulationConfig {
            rounds,
            laziness,
            protocol,
            seed,
        };
        let payloads: Vec<u32> = (0..300).collect();
        let batched = run_protocol(&graph, payloads.clone(), config, |_| u32::MAX).unwrap();
        let reference = run_protocol_reference(&graph, payloads, config, |_| u32::MAX).unwrap();
        assert_eq!(
            curator_view(&batched),
            curator_view(&reference),
            "submission divergence: {protocol} laziness={laziness} rounds={rounds} seed={seed}"
        );
        assert_eq!(
            batched.metrics, reference.metrics,
            "metrics divergence: {protocol} laziness={laziness} rounds={rounds} seed={seed}"
        );
    }
}

/// The dummy-payload RNG threading is part of the parity contract too: the
/// randomizer wrapper must hand both paths the same dummy stream.
#[test]
fn protocol_parity_includes_dummy_consuming_closures() {
    let mut graph_rng = ns_graph::rng::seeded_rng(3);
    let graph = ns_graph::generators::random_regular(120, 4, &mut graph_rng).unwrap();
    let config = SimulationConfig::single(15, 77);
    let payloads: Vec<u32> = (0..120).collect();
    // A dummy closure that *draws from the simulation RNG*, so any
    // divergence in draw order between the paths becomes visible.
    let batched = run_protocol(&graph, payloads.clone(), config, |rng| rng.gen::<u32>()).unwrap();
    let reference =
        run_protocol_reference(&graph, payloads, config, |rng| rng.gen::<u32>()).unwrap();
    assert_eq!(curator_view(&batched), curator_view(&reference));
    assert_eq!(batched.metrics, reference.metrics);
}

/// Scale smoke test: 100k-node regular graph, data-parallel rounds (the
/// `parallel` feature), conservation + determinism checks.
#[test]
fn hundred_thousand_node_parallel_smoke() {
    let n = 100_000;
    let mut graph_rng = ns_graph::rng::seeded_rng(4);
    let graph = ns_graph::generators::random_regular(n, 8, &mut graph_rng).unwrap();

    let run = |seed: u64| {
        let mut engine = MixingEngine::one_walker_per_node(&graph).unwrap();
        engine.run_parallel(WalkConfig::lazy(6, 0.1), seed).unwrap();
        engine
    };
    let engine = run(42);
    assert_eq!(engine.round(), 6);
    assert_eq!(engine.walker_count(), n);
    assert!(engine.positions().iter().all(|&p| (p as usize) < n));
    let load = engine.load_vector();
    assert_eq!(load.iter().sum::<usize>(), n);

    // Deterministic in the seed, independent of thread scheduling.
    let again = run(42);
    assert_eq!(engine.positions(), again.positions());
    let other = run(43);
    assert_ne!(engine.positions(), other.positions());
}
