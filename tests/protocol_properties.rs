//! Property-based tests of the protocol and walk invariants.
//!
//! Random graphs are drawn through the shared strategy module
//! (`tests/common`): degree-bounded regular graphs for the protocol
//! properties, connected G(n, p) components for the transition-matrix
//! invariants.

mod common;

use common::strategies;
use network_shuffle::prelude::*;
use ns_graph::distribution::PositionDistribution;
use ns_graph::generators::random_regular;
use ns_graph::transition::TransitionMatrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `A_all` conserves reports: every origin appears exactly once at the
    /// curator, regardless of graph, rounds, laziness or seed.
    #[test]
    fn a_all_conserves_reports(
        graph in strategies::degree_bounded(10..120, 3..8),
        rounds in 0usize..25,
        laziness in 0.0f64..0.9,
        seed in 0u64..1_000,
    ) {
        let n = graph.node_count();
        let payloads: Vec<u32> = (0..n as u32).collect();
        let config = SimulationConfig { rounds, laziness, protocol: ProtocolKind::All, seed };
        let outcome = run_protocol(&graph, payloads, config, |_| u32::MAX).unwrap();
        prop_assert_eq!(outcome.collected.report_count(), n);
        prop_assert_eq!(outcome.collected.dummy_count(), 0);
        let mut origins: Vec<usize> =
            outcome.collected.reports_with_submitter().map(|(_, r)| r.origin).collect();
        origins.sort_unstable();
        prop_assert_eq!(origins, (0..n).collect::<Vec<_>>());
        // Load vector sums to n and matches the submissions.
        let load = outcome.collected.load_vector(n);
        prop_assert_eq!(load.iter().sum::<usize>(), n);
    }

    /// `A_single` sends exactly one report per user; genuine + dummy = n and
    /// no genuine origin is duplicated.
    #[test]
    fn a_single_sends_exactly_one_report_each(
        graph in strategies::degree_bounded(10..120, 3..8),
        rounds in 1usize..25,
        seed in 0u64..1_000,
    ) {
        let n = graph.node_count();
        let payloads: Vec<u32> = (0..n as u32).collect();
        let outcome =
            run_protocol(&graph, payloads, SimulationConfig::single(rounds, seed), |_| 0).unwrap();
        prop_assert_eq!(outcome.collected.report_count(), n);
        for submission in outcome.collected.submissions() {
            prop_assert_eq!(submission.len(), 1);
        }
        let genuine: Vec<usize> = outcome
            .collected
            .reports_with_submitter()
            .filter(|(_, r)| !r.is_dummy)
            .map(|(_, r)| r.origin)
            .collect();
        let mut dedup = genuine.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), genuine.len(), "a genuine report was duplicated");
        prop_assert_eq!(genuine.len() + outcome.collected.dummy_count(), n);
    }

    /// Traffic accounting: under `A_all` with no laziness, total relay
    /// messages equal reports × rounds, and the server stores exactly n
    /// reports.
    #[test]
    fn traffic_metrics_match_conservation_laws(
        graph in strategies::degree_bounded(10..100, 3..6),
        rounds in 0usize..20,
        seed in 0u64..500,
    ) {
        let n = graph.node_count();
        let outcome = run_protocol(
            &graph,
            vec![0u8; n],
            SimulationConfig::all(rounds, seed),
            |_| 0,
        )
        .unwrap();
        prop_assert_eq!(outcome.metrics.total_messages(), n * rounds);
        prop_assert_eq!(outcome.metrics.server_reports, n);
        prop_assert!(outcome.metrics.max_peak_reports() >= 1);
    }

    /// The transition matrix conserves probability mass and keeps every
    /// entry non-negative, for arbitrary connected graphs and laziness.
    #[test]
    fn transition_preserves_probability(
        graph in strategies::connected_gnp(5..200, 0.05..0.5),
        laziness in 0.0f64..0.95,
        origin_choice in 0usize..10_000,
    ) {
        prop_assume!(graph.node_count() >= 2);
        let transition = TransitionMatrix::with_laziness(&graph, laziness).unwrap();
        let origin = origin_choice % graph.node_count();
        let mut dist = PositionDistribution::point_mass(graph.node_count(), origin).unwrap();
        for _ in 0..10 {
            dist.step(&transition);
            let total: f64 = dist.probabilities().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(dist.probabilities().iter().all(|&x| x >= -1e-15));
            prop_assert!(dist.sum_of_squares() <= 1.0 + 1e-9);
            prop_assert!(dist.sum_of_squares() >= 1.0 / graph.node_count() as f64 - 1e-9);
        }
    }

    /// Walk-engine positions always remain valid nodes and the load vector
    /// always sums to the number of walkers.
    #[test]
    fn walk_engine_invariants(
        graph in strategies::degree_bounded(10..150, 3..8),
        rounds in 1usize..30,
        laziness in 0.0f64..0.9,
        seed in 0u64..1_000,
    ) {
        let n = graph.node_count();
        let mut engine = ns_graph::walk::WalkEngine::one_walker_per_node(&graph).unwrap();
        let mut rng = ns_graph::rng::seeded_rng(seed);
        engine.run(ns_graph::walk::WalkConfig::lazy(rounds, laziness), &mut rng).unwrap();
        prop_assert!(engine.positions().iter().all(|&p| (p as usize) < n));
        prop_assert_eq!(engine.load_vector().iter().sum::<usize>(), n);
        prop_assert_eq!(engine.round(), rounds);
    }

    /// Determinism: identical seeds produce identical curator views.
    #[test]
    fn simulation_is_deterministic(
        graph in strategies::degree_bounded(10..80, 3..6),
        rounds in 1usize..15,
        seed in 0u64..300,
    ) {
        let n = graph.node_count();
        let run = || {
            let outcome = run_protocol(
                &graph,
                (0..n as u32).collect(),
                SimulationConfig::single(rounds, seed),
                |_| 7,
            )
            .unwrap();
            outcome
                .collected
                .reports_with_submitter()
                .map(|(s, r)| (s, r.origin, r.is_dummy, r.payload))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}

/// Non-proptest regression: an adversary observing a zero-round run links
/// everything; a well-mixed run links almost nothing.  (Kept outside the
/// proptest block because it needs a specific, larger configuration.)
#[test]
fn anonymity_improves_with_rounds() {
    let graph = random_regular(300, 8, &mut ns_graph::rng::seeded_rng(5)).unwrap();
    let before = run_protocol(&graph, vec![0u8; 300], SimulationConfig::all(0, 1), |_| 0).unwrap();
    let after = run_protocol(&graph, vec![0u8; 300], SimulationConfig::all(60, 1), |_| 0).unwrap();
    let rate = |outcome: &SimulationOutcome<u8>| {
        AdversaryView::from_submissions(outcome.collected.submissions())
            .linkage_stats(&graph)
            .return_rate()
    };
    assert_eq!(rate(&before), 1.0);
    assert!(
        rate(&after) < 0.05,
        "return rate after mixing = {}",
        rate(&after)
    );
}
