//! The engines' telemetry bundle: preregistered `ns-obs` handles for the
//! per-round phase breakdown.
//!
//! Engines carry an `Option<EngineTelemetry>` (default `None` — the
//! no-op path).  Attaching one adds phase span timers and counters
//! around the existing round structure; it never draws randomness,
//! never branches on recorded values and never touches engine state, so
//! an instrumented run is **bitwise identical** to a bare one (pinned by
//! `tests/observability.rs` against the golden round traces).  All
//! recording writes into slots registered up front: steady-state rounds
//! stay allocation-free with telemetry attached (audited by
//! `cargo bench -p ns-bench --bench sharded_mixing`).

use ns_obs::{Clock, Counter, Histogram, MetricsRegistry};

/// Metric names the engines register (the README's catalogue).
pub mod names {
    /// Decide-phase duration per round (holder sweeps + draws), ns.
    pub const DECIDE_NS: &str = "ns_round_decide_ns";
    /// Exchange-phase duration per round (delivery routing / position
    /// writes), ns.
    pub const EXCHANGE_NS: &str = "ns_round_exchange_ns";
    /// Merge-phase duration per round (counting-sort bucket rebuild), ns.
    pub const MERGE_NS: &str = "ns_round_merge_ns";
    /// Per-worker wait at the pipelined exchange barrier, ns.
    pub const BARRIER_WAIT_NS: &str = "ns_round_barrier_wait_ns";
    /// Outbox row depth (deliveries routed per destination shard) per
    /// source shard per round.
    pub const OUTBOX_DEPTH: &str = "ns_round_outbox_depth";
    /// Walkers whose drawn move bounced off an unavailable recipient.
    pub const MASK_BOUNCES: &str = "ns_round_mask_bounces";
    /// Rounds executed.
    pub const ROUNDS_TOTAL: &str = "ns_rounds_total";
}

/// Preregistered phase-timing handles, shared by the monolithic and the
/// sharded engine.  Clone-cheap (`Arc` bumps); `Send + Sync`, so the
/// pipelined workers record into the same histograms.
#[derive(Clone, Debug)]
pub struct EngineTelemetry {
    pub(crate) clock: Clock,
    pub(crate) decide_ns: Histogram,
    pub(crate) exchange_ns: Histogram,
    pub(crate) merge_ns: Histogram,
    // Only the pipelined (feature = "parallel") round loop has a barrier
    // to time; the field stays registered either way so the rendered
    // catalogue is feature-independent.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    pub(crate) barrier_wait_ns: Histogram,
    pub(crate) outbox_depth: Histogram,
    pub(crate) mask_bounces: Counter,
    pub(crate) rounds: Counter,
}

impl EngineTelemetry {
    /// Registers (or re-binds) the engine metrics in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        EngineTelemetry {
            clock: registry.clock().clone(),
            decide_ns: registry.histogram(names::DECIDE_NS),
            exchange_ns: registry.histogram(names::EXCHANGE_NS),
            merge_ns: registry.histogram(names::MERGE_NS),
            barrier_wait_ns: registry.histogram(names::BARRIER_WAIT_NS),
            outbox_depth: registry.histogram(names::OUTBOX_DEPTH),
            mask_bounces: registry.counter(names::MASK_BOUNCES),
            rounds: registry.counter(names::ROUNDS_TOTAL),
        }
    }
}
