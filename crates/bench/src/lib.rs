//! Shared infrastructure for the experiment harness.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (see DESIGN.md's per-experiment index); this library
//! holds the pieces they share: dataset caching with sensible default
//! scaling, simple table/CSV emitters, and the common parameter grids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use network_shuffle::accountant::closed_form::AccountantParams;
use network_shuffle::accountant::NetworkShuffleAccountant;
use network_shuffle::protocol::ProtocolKind;
use ns_datasets::{Dataset, GeneratedDataset};
use std::io::Write;
use std::path::PathBuf;

/// Default δ used throughout the experiments (also the paper's choice of
/// "δ smaller than 1/n" for the populations considered).
pub const DELTA: f64 = 1e-6;

/// Seed used by all experiment binaries so results are reproducible.
pub const SEED: u64 = 20220408; // arXiv submission date of the paper.

/// Returns the scale divisor to apply to a dataset.
///
/// Defaults: the four smaller graphs are generated at full scale; the Google
/// web graph is scaled down 10× (full scale is supported but takes several
/// minutes of spectral analysis).  Set `NS_BENCH_SCALE` to an integer `k` to
/// further divide every dataset by `k` (useful for smoke tests), or to `full`
/// to force full scale everywhere.
pub fn scale_divisor(dataset: Dataset) -> usize {
    let base = match dataset {
        Dataset::Google => 10,
        _ => 1,
    };
    match std::env::var("NS_BENCH_SCALE") {
        Ok(v) if v.eq_ignore_ascii_case("full") => 1,
        Ok(v) => base * v.parse::<usize>().unwrap_or(1).max(1),
        Err(_) => base,
    }
}

/// Generates (or regenerates) a dataset stand-in at the default scale.
///
/// # Panics
///
/// Panics if generation fails — experiment binaries treat that as fatal.
pub fn dataset_graph(dataset: Dataset) -> GeneratedDataset {
    let divisor = scale_divisor(dataset);
    dataset.generate_scaled(divisor, SEED).unwrap_or_else(|e| {
        panic!("failed to generate {dataset} stand-in (divisor {divisor}): {e}")
    })
}

/// A dataset stand-in paired with the privacy accountant of its ergodic
/// walk — the starting point of almost every accountant experiment.
pub struct DatasetAccountant {
    /// The generated graph plus its spec/achieved statistics.
    pub generated: GeneratedDataset,
    /// The accountant bound to `generated.graph`.
    pub accountant: NetworkShuffleAccountant,
}

impl DatasetAccountant {
    /// The dataset's display name.
    pub fn name(&self) -> &'static str {
        self.generated.spec.name
    }
}

/// Generates one dataset at the default scale and binds an accountant to
/// it — the construction boilerplate shared by the figure/ablation
/// binaries.  Emits nothing on stdout, so callers control their own
/// per-dataset log lines.
///
/// # Panics
///
/// Panics if generation fails or the stand-in is not ergodic — experiment
/// binaries treat both as fatal.
pub fn dataset_accountant(dataset: Dataset) -> DatasetAccountant {
    let generated = dataset_graph(dataset);
    let accountant = NetworkShuffleAccountant::new(&generated.graph).expect("ergodic graph");
    DatasetAccountant {
        generated,
        accountant,
    }
}

/// [`dataset_accountant`] over a list of datasets.
///
/// # Panics
///
/// See [`dataset_accountant`].
pub fn dataset_accountants(datasets: impl IntoIterator<Item = Dataset>) -> Vec<DatasetAccountant> {
    datasets.into_iter().map(dataset_accountant).collect()
}

/// Central ε at the graph's mixing time under the stationary bound with the
/// experiment-default δs — the sweep kernel of the ε₀-grid figures.
///
/// # Panics
///
/// Panics on parameter or accountant errors (fatal in experiment binaries).
pub fn epsilon_at_mixing_time(
    accountant: &NetworkShuffleAccountant,
    protocol: ProtocolKind,
    epsilon_0: f64,
) -> f64 {
    let params = AccountantParams::new(accountant.node_count(), epsilon_0, DELTA, DELTA)
        .expect("valid params");
    accountant
        .central_guarantee_at_mixing_time(
            protocol,
            network_shuffle::accountant::Scenario::Stationary,
            &params,
        )
        .expect("guarantee")
        .epsilon
}

/// Prints a fixed-width table with a header row and a separator.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain([h.len()])
                .max()
                .unwrap_or(0)
        })
        .collect();
    let render = |cells: &[String]| {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", render(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", render(row));
    }
}

/// Writes rows as a CSV file under `results/` (created on demand) and
/// returns the path.  Failures are printed but not fatal — the tables are
/// always also printed to stdout.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut file = match std::fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warning: could not create {}: {e}", path.display());
            return None;
        }
    };
    let mut write_line = |cells: &[String]| writeln!(file, "{}", cells.join(","));
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    if write_line(&header_cells).is_err() {
        return None;
    }
    for row in rows {
        if write_line(row).is_err() {
            return None;
        }
    }
    println!("wrote results/{name}.csv");
    Some(path)
}

/// Formats a float with 4 significant-ish decimals for table cells.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// An inclusive linear grid of `points` values from `lo` to `hi`.
pub fn linspace(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    if points <= 1 {
        return vec![lo];
    }
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let g = linspace(0.2, 2.0, 10);
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.2).abs() < 1e-12);
        assert!((g[9] - 2.0).abs() < 1e-12);
        assert_eq!(linspace(1.0, 2.0, 1), vec![1.0]);
    }

    #[test]
    fn fmt_covers_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(0.1234567).starts_with("0.1235"));
        assert!(fmt(12345.0).contains('e'));
        assert!(fmt(1e-7).contains('e'));
    }

    #[test]
    fn default_scale_divisors() {
        // Without the env var set, only Google is scaled down.
        if std::env::var("NS_BENCH_SCALE").is_err() {
            assert_eq!(scale_divisor(Dataset::Twitch), 1);
            assert_eq!(scale_divisor(Dataset::Google), 10);
        }
    }
}
