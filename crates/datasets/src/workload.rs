//! The Gaussian-mixture workload of the paper's mean-estimation study
//! (Section 5.6, Figure 9).
//!
//! `d`-dimensional samples are generated independently but *non-identically*:
//! the first half of the users draw `z ~ N(1, 1)^{⊗d}`, the second half
//! `z ~ N(10, 1)^{⊗d}`, and each sample is normalized to the unit sphere
//! (`x = z / ‖z‖₂`) as PrivUnit requires.  Dummy samples (needed by the
//! `A_single` protocol) are drawn from `N(5, 1)^{⊗d}` and normalized the
//! same way.  The paper uses `d = 200`.

use ns_graph::rng::{derived_rng, SimRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the mean-estimation workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of users (samples) `n`.
    pub user_count: usize,
    /// Dimensionality `d` (the paper uses 200).
    pub dimension: usize,
    /// Mean of the first half of the population.
    pub low_mean: f64,
    /// Mean of the second half of the population.
    pub high_mean: f64,
    /// Mean of the dummy distribution.
    pub dummy_mean: f64,
    /// Number of dummy vectors to pre-generate for the `A_single` pool.
    pub dummy_pool_size: usize,
    /// Generation seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's configuration for a population of `user_count` users:
    /// `d = 200`, means 1 / 10 / 5.
    pub fn paper_defaults(user_count: usize, seed: u64) -> Self {
        WorkloadConfig {
            user_count,
            dimension: 200,
            low_mean: 1.0,
            high_mean: 10.0,
            dummy_mean: 5.0,
            dummy_pool_size: 256,
            seed,
        }
    }
}

/// A generated mean-estimation workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanEstimationWorkload {
    /// One unit vector per user.
    pub data: Vec<Vec<f64>>,
    /// Pool of unit-norm dummy vectors for `A_single`.
    pub dummy_pool: Vec<Vec<f64>>,
    /// The true population mean (of the normalized data), the quantity the
    /// curator tries to estimate.
    pub true_mean: Vec<f64>,
}

impl MeanEstimationWorkload {
    /// Generates the workload described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `user_count`, `dimension` or `dummy_pool_size` is zero —
    /// these are programming errors, not runtime conditions.
    pub fn generate(config: &WorkloadConfig) -> Self {
        assert!(config.user_count > 0, "workload requires at least one user");
        assert!(
            config.dimension > 0,
            "workload requires a positive dimension"
        );
        assert!(config.dummy_pool_size > 0, "dummy pool must not be empty");

        let mut rng = derived_rng(config.seed, "mean-estimation-workload");
        let half = config.user_count / 2;
        let mut data = Vec::with_capacity(config.user_count);
        for i in 0..config.user_count {
            let mean = if i < half {
                config.low_mean
            } else {
                config.high_mean
            };
            data.push(normalized_gaussian(config.dimension, mean, &mut rng));
        }
        let dummy_pool = (0..config.dummy_pool_size)
            .map(|_| normalized_gaussian(config.dimension, config.dummy_mean, &mut rng))
            .collect();

        let mut true_mean = vec![0.0; config.dimension];
        for x in &data {
            for (m, v) in true_mean.iter_mut().zip(x.iter()) {
                *m += v;
            }
        }
        for m in true_mean.iter_mut() {
            *m /= config.user_count as f64;
        }

        MeanEstimationWorkload {
            data,
            dummy_pool,
            true_mean,
        }
    }

    /// Number of users in the workload.
    pub fn user_count(&self) -> usize {
        self.data.len()
    }

    /// Dimensionality of the vectors.
    pub fn dimension(&self) -> usize {
        self.data.first().map_or(0, |v| v.len())
    }
}

/// Draws `z ~ N(mean, 1)^{⊗d}` and normalizes it to the unit sphere.
fn normalized_gaussian(dimension: usize, mean: f64, rng: &mut SimRng) -> Vec<f64> {
    let mut v: Vec<f64> = (0..dimension)
        .map(|_| mean + standard_normal(rng))
        .collect();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    } else {
        v[0] = 1.0;
    }
    v
}

/// Standard-normal sample via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_6() {
        let config = WorkloadConfig::paper_defaults(9_498, 1);
        assert_eq!(config.dimension, 200);
        assert_eq!(config.low_mean, 1.0);
        assert_eq!(config.high_mean, 10.0);
        assert_eq!(config.dummy_mean, 5.0);
    }

    #[test]
    fn vectors_are_unit_norm() {
        let config = WorkloadConfig {
            user_count: 100,
            dimension: 16,
            ..WorkloadConfig::paper_defaults(100, 2)
        };
        let workload = MeanEstimationWorkload::generate(&config);
        assert_eq!(workload.user_count(), 100);
        assert_eq!(workload.dimension(), 16);
        for v in workload.data.iter().chain(workload.dummy_pool.iter()) {
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "norm = {norm}");
        }
    }

    #[test]
    fn true_mean_is_the_mean_of_the_data() {
        let config = WorkloadConfig {
            user_count: 50,
            dimension: 8,
            ..WorkloadConfig::paper_defaults(50, 3)
        };
        let workload = MeanEstimationWorkload::generate(&config);
        let mut expected = [0.0; 8];
        for v in &workload.data {
            for (e, x) in expected.iter_mut().zip(v.iter()) {
                *e += x / 50.0;
            }
        }
        for (a, b) in workload.true_mean.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn two_population_structure_is_visible_before_normalization_washout() {
        // Low-mean samples (mean 1, std 1 per coordinate) have much more
        // direction spread than high-mean samples (mean 10): check via the
        // dot product with the all-ones direction.
        let config = WorkloadConfig {
            user_count: 200,
            dimension: 32,
            ..WorkloadConfig::paper_defaults(200, 4)
        };
        let workload = MeanEstimationWorkload::generate(&config);
        let ones: Vec<f64> = vec![1.0 / (32f64).sqrt(); 32];
        let dot = |v: &Vec<f64>| v.iter().zip(ones.iter()).map(|(a, b)| a * b).sum::<f64>();
        let low_avg: f64 = workload.data[..100].iter().map(dot).sum::<f64>() / 100.0;
        let high_avg: f64 = workload.data[100..].iter().map(dot).sum::<f64>() / 100.0;
        assert!(high_avg > low_avg, "high {high_avg} vs low {low_avg}");
        assert!(high_avg > 0.99);
    }

    #[test]
    fn generation_is_deterministic() {
        let config = WorkloadConfig {
            user_count: 20,
            dimension: 4,
            ..WorkloadConfig::paper_defaults(20, 5)
        };
        let a = MeanEstimationWorkload::generate(&config);
        let b = MeanEstimationWorkload::generate(&config);
        assert_eq!(a, b);
        let other = WorkloadConfig { seed: 6, ..config };
        assert_ne!(a, MeanEstimationWorkload::generate(&other));
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_panics() {
        let config = WorkloadConfig {
            user_count: 0,
            dimension: 4,
            ..WorkloadConfig::paper_defaults(1, 1)
        };
        MeanEstimationWorkload::generate(&config);
    }
}
