//! The privacy accountant: Theorems 5.3–5.6 and 6.1 of the paper.
//!
//! The accountant answers the question the whole system exists to answer:
//! *given that every user applied an ε₀-LDP randomizer and the reports were
//! exchanged for `t` rounds on graph `G`, what `(ε, δ)` guarantee does the
//! collection enjoy in the central model?*
//!
//! The theorems consume the graph only through `Σ_i P_i^G(t)²` (and, for
//! the `A_all` analysis, the support ratio `ρ*`).  Four routes derive those
//! quantities, from cheapest to most informative:
//!
//! | route | scenario | applies to | cost | what you get |
//! |-------|----------|------------|------|--------------|
//! | spectral bound (Eq. 7) | [`Scenario::Stationary`] | any ergodic graph | `O(1)` per `t` after one spectral analysis | worst-case bound, can be loose pre-mixing |
//! | exact single origin | [`Scenario::Symmetric`] | (near-)regular graphs, or one chosen user | `O(t·m)` | exact `Σ P²`/`ρ*` for that origin |
//! | exact ensemble | [`Scenario::Exact`] | any ergodic graph — static, or a realized churn schedule attached via [`NetworkShuffleAccountant::with_schedule`] | `O(n·t·m)` via the batched [`ns_graph::ensemble`] kernel | exact per-user moments and the worst user's ε, on the walk that actually ran |
//! | empirical | [`estimate_mixing`] | black-box / dynamic transition structures | `trials · O(t·(n+m))` on the batched walker engine | unbiased Monte-Carlo estimate, averaged over origins |
//!
//! The routes cross-validate each other: the ensemble restricted to one row
//! reproduces the symmetric route bit for bit, the exact values sit clearly
//! below the spectral bound through the pre-mixing regime (and within a
//! fraction of a percent of it at stationarity), and the empirical
//! estimator converges to the ensemble's origin-average.  On heterogeneous
//! graphs the worst origin can even exceed the regular-graph-derived Eq. 7
//! bound — at `t = 1` a degree-1 user's report sits on her only neighbour
//! with probability 1 — which is why per-user guarantees need the exact
//! ensemble route rather than the bound.
//!
//! Module map:
//!
//! * [`closed_form`] — the raw formulas, taking `Σ_i P_i²` as an input;
//! * [`graph_accountant`] — the graph-bound layer implementing the first
//!   three routes and the ε-vs-rounds sweeps for the figures;
//! * [`empirical`] — the Monte-Carlo route;
//! * [`planning`] — the inverse questions a deployment asks: how many rounds
//!   are enough, and how large an ε₀ still meets a central target.

pub mod closed_form;
pub mod empirical;
pub mod graph_accountant;
pub mod planning;

pub use closed_form::{
    all_protocol_epsilon, all_protocol_epsilon_approx, single_protocol_epsilon,
    single_protocol_epsilon_approx, AccountantParams,
};
pub use empirical::{estimate_mixing, EmpiricalMixing};
pub use graph_accountant::{NetworkShuffleAccountant, Scenario};
pub use ns_graph::ensemble::RowStats;
pub use planning::{epsilon_0_for_central_target, rounds_for_target_epsilon};
