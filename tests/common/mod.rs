//! Shared test infrastructure for the workspace integration tests.
//!
//! The random-graph builders that used to be duplicated (and subtly
//! diverging) across the `tests/` binaries live here as reusable
//! [`proptest`] strategies.  Each strategy draws a whole [`Graph`] from the
//! per-property deterministic RNG, so failing cases reproduce from the
//! property name alone, like every other shim strategy.
//!
//! Not every test binary uses every helper, hence the module-wide
//! `allow(dead_code)`.

#![allow(dead_code)]

pub mod strategies {
    use ns_graph::connectivity::largest_connected_component;
    use ns_graph::{generators, Graph};
    use proptest::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for connected Erdős–Rényi graphs: draws `G(n, p)` and keeps
    /// the largest connected component (callers needing a minimum size
    /// should `prop_assume!` on `node_count`).
    #[derive(Debug, Clone)]
    pub struct ConnectedGnp {
        /// Range of the *pre-pruning* node count.
        pub nodes: Range<usize>,
        /// Range of the edge probability.
        pub edge_probability: Range<f64>,
    }

    /// Connected-graph strategy over `G(n, p)` largest components.
    pub fn connected_gnp(nodes: Range<usize>, edge_probability: Range<f64>) -> ConnectedGnp {
        ConnectedGnp {
            nodes,
            edge_probability,
        }
    }

    impl Strategy for ConnectedGnp {
        type Value = Graph;

        fn sample_value(&self, rng: &mut TestRng) -> Graph {
            let n = rng.gen_range(self.nodes.clone());
            let p = rng.gen_range(self.edge_probability.clone());
            let raw = generators::gnp(n, p, rng).expect("gnp parameters are valid");
            largest_connected_component(&raw).0
        }
    }

    /// Strategy for degree-bounded (k-regular) connected graphs: every node
    /// has the same degree `k`, clamped and parity-adjusted so the pairing
    /// model is realizable.
    #[derive(Debug, Clone)]
    pub struct DegreeBounded {
        /// Range of the node count.
        pub nodes: Range<usize>,
        /// Range of the (uniform) degree.
        pub degree: Range<usize>,
    }

    /// Degree-bounded strategy: `k`-regular graphs with `k` in `degree`.
    pub fn degree_bounded(nodes: Range<usize>, degree: Range<usize>) -> DegreeBounded {
        DegreeBounded { nodes, degree }
    }

    impl Strategy for DegreeBounded {
        type Value = Graph;

        fn sample_value(&self, rng: &mut TestRng) -> Graph {
            let n = rng.gen_range(self.nodes.clone());
            let k = rng.gen_range(self.degree.clone());
            // The historical `test_graph` adjustment: keep n*k even and
            // 3 <= k < n so the configuration model always succeeds.
            let k = k.min(n - 1);
            let k = if (n * k) % 2 == 1 { k + 1 } else { k };
            let k = k.clamp(3, n - 1);
            generators::random_regular(n, k, rng).expect("regular graph parameters are valid")
        }
    }

    /// Strategy for stochastic-block-model community graphs (largest
    /// connected component of a planted-partition draw).
    #[derive(Debug, Clone)]
    pub struct Sbm {
        /// Range of the *pre-pruning* node count.
        pub nodes: Range<usize>,
        /// Range of the community count.
        pub blocks: Range<usize>,
        /// Range of the within-community edge probability.
        pub p_within: Range<f64>,
        /// Range of the across-community edge probability.
        pub p_across: Range<f64>,
    }

    /// SBM strategy with the given parameter ranges.
    pub fn sbm(
        nodes: Range<usize>,
        blocks: Range<usize>,
        p_within: Range<f64>,
        p_across: Range<f64>,
    ) -> Sbm {
        Sbm {
            nodes,
            blocks,
            p_within,
            p_across,
        }
    }

    impl Strategy for Sbm {
        type Value = Graph;

        fn sample_value(&self, rng: &mut TestRng) -> Graph {
            let n = rng.gen_range(self.nodes.clone());
            let blocks = rng.gen_range(self.blocks.clone());
            let p_in = rng.gen_range(self.p_within.clone());
            let p_out = rng.gen_range(self.p_across.clone());
            let raw = generators::stochastic_block_model(n, blocks, p_in, p_out, rng)
                .expect("sbm parameters are valid");
            largest_connected_component(&raw).0
        }
    }

    /// A mixed-family strategy: each draw picks one of five families
    /// uniformly — degree-bounded regular, connected G(n, p), SBM, and the
    /// heavy-tailed pair (Barabási–Albert, Chung–Lu), whose hub degrees are
    /// exactly what stresses the blocked kernel's remainder lanes and the
    /// exact accountant.  This is the "any reasonable communication graph"
    /// input of the determinism and conservation properties.
    #[derive(Debug, Clone)]
    pub struct GraphZoo {
        /// Range of the (pre-pruning) node count for every family.
        pub nodes: Range<usize>,
    }

    /// Mixed-family graph strategy over the given node-count range.
    pub fn graph_zoo(nodes: Range<usize>) -> GraphZoo {
        GraphZoo { nodes }
    }

    impl Strategy for GraphZoo {
        type Value = Graph;

        fn sample_value(&self, rng: &mut TestRng) -> Graph {
            match rng.gen_range(0usize..5) {
                0 => degree_bounded(self.nodes.clone(), 3..8).sample_value(rng),
                1 => connected_gnp(self.nodes.clone(), 0.04..0.3).sample_value(rng),
                2 => sbm(self.nodes.clone(), 3..7, 0.1..0.3, 0.005..0.05).sample_value(rng),
                3 => {
                    let n = rng.gen_range(self.nodes.clone()).max(5);
                    generators::barabasi_albert(n, 2, rng).expect("ba parameters are valid")
                }
                _ => {
                    let n = rng.gen_range(self.nodes.clone());
                    let weights: Vec<f64> = (0..n).map(|i| 2.0 + (i % 7) as f64).collect();
                    let raw = generators::chung_lu(&weights, rng).expect("chung-lu weights");
                    largest_connected_component(&raw).0
                }
            }
        }
    }
}
