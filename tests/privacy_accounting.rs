//! Integration and property-based tests of the privacy accounting stack:
//! the closed-form theorems, the graph-bound accountant, the amplification
//! baselines and the approximate-DP corollaries.

use network_shuffle::accountant::closed_form::{
    all_protocol_epsilon_approx, best_of, ldp_fallback, single_protocol_epsilon_approx,
};
use network_shuffle::prelude::*;
use ns_dp::amplification::{clones_shuffling_epsilon, erlingsson_shuffling_epsilon};
use ns_dp::composition::heterogeneous_advanced_composition;
use proptest::prelude::*;

const DELTA: f64 = 1e-6;

/// The A_all theorem is (numerically) consistent with re-deriving it from
/// its ingredients: per-slot epsilons composed with the heterogeneous
/// advanced composition theorem.
#[test]
fn all_protocol_is_consistent_with_manual_composition() {
    // Regular graph at stationarity: every user expects one report, so the
    // per-slot epsilon is log(1 + e^{2 eps0}(e^{eps0}-1) * l_i / n) with
    // l_i = ||L||_2-normalized loads. With the concentration bound replaced
    // by the actual uniform allocation l_i = 1, composing n identical slots
    // must lower-bound the theorem's epsilon (the theorem is a worst case).
    let n = 50_000usize;
    let eps0 = 0.5f64;
    let per_slot = (1.0 + (2.0 * eps0).exp() * (eps0.exp() - 1.0) / n as f64).ln();
    let composed = heterogeneous_advanced_composition(&vec![per_slot; n], DELTA).unwrap();

    let params = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
    let theorem = all_protocol_epsilon(&params, 1.0 / n as f64, 1.0).unwrap();
    assert!(
        composed <= theorem.epsilon,
        "idealized composition {composed} should not exceed the worst-case theorem {}",
        theorem.epsilon
    );
    // And the two should be within an order of magnitude (the slack comes
    // from the concentration bound's sqrt(log(1/delta_2)/n) term).
    assert!(theorem.epsilon < 10.0 * composed);
}

/// Table 1's qualitative content: every mechanism amplifies below ε₀ at
/// moderate ε₀ and large n, the clones analysis is the tightest
/// shuffle-model bound, and network shuffling's stronger exponential
/// dependence on ε₀ makes it fall behind the clones bound once ε₀ is large.
#[test]
fn table1_ordering_holds() {
    let n = 1_000_000usize;
    for &eps0 in &[0.25f64, 0.5, 1.0, 2.0] {
        let params = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
        let network = single_protocol_epsilon(&params, 1.0 / n as f64)
            .unwrap()
            .epsilon;
        let clones = clones_shuffling_epsilon(eps0, n, DELTA).unwrap();
        let erlingsson = erlingsson_shuffling_epsilon(eps0, n, DELTA).unwrap();
        assert!(
            network < eps0,
            "eps0={eps0}: network {network} should amplify"
        );
        assert!(
            clones <= erlingsson,
            "eps0={eps0}: clones should be the tightest shuffle bound"
        );
    }
    // Exponential dependence: the network-shuffling bound grows like
    // e^{1.5 eps0} while the clones bound grows like e^{0.5 eps0}, so their
    // ratio must increase with eps0 and the clones bound must win eventually.
    let ratio_at = |eps0: f64| {
        let params = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
        single_protocol_epsilon(&params, 1.0 / n as f64)
            .unwrap()
            .epsilon
            / clones_shuffling_epsilon(eps0, n, DELTA).unwrap()
    };
    assert!(ratio_at(2.0) > ratio_at(0.5));
    assert!(
        ratio_at(3.0) > 1.0,
        "clones must be tighter than network shuffling at eps0 = 3"
    );
}

/// The graph accountant's stationary bound is never tighter than the exact
/// symmetric computation once the walk has mixed (the bound is a worst case).
#[test]
fn stationary_bound_dominates_exact_value_after_mixing() {
    let graph =
        ns_graph::generators::random_regular(800, 8, &mut ns_graph::rng::seeded_rng(1)).unwrap();
    let accountant = NetworkShuffleAccountant::new(&graph).unwrap();
    let t = accountant.mixing_time();
    let (bound, _) = accountant.sum_p_squared(Scenario::Stationary, t).unwrap();
    let (exact, _) = accountant
        .sum_p_squared(Scenario::Symmetric { origin: 0 }, t)
        .unwrap();
    assert!(
        exact <= bound * (1.0 + 1e-6),
        "exact {exact} vs bound {bound}"
    );
}

/// Approximate-DP corollaries: a Gaussian randomizer with admissible δ₀
/// yields a finite, valid guarantee that is weaker than the pure-DP case.
#[test]
fn approximate_dp_corollaries_are_weaker_but_valid() {
    let n = 200_000usize;
    let eps0 = 0.25f64;
    let params = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
    let sum_p_sq = 2.0 / n as f64;
    let delta_1 = 1e-12;
    let delta_0 = ns_dp::conversion::delta0_threshold(eps0, delta_1).unwrap() / 2.0;

    let pure_all = all_protocol_epsilon(&params, sum_p_sq, 1.0).unwrap();
    let approx_all = all_protocol_epsilon_approx(&params, sum_p_sq, 1.0, delta_0, delta_1).unwrap();
    assert!(approx_all.epsilon > pure_all.epsilon);
    assert!(approx_all.delta > pure_all.delta);
    assert!(approx_all.delta < 1.0);

    let pure_single = single_protocol_epsilon(&params, sum_p_sq).unwrap();
    let approx_single =
        single_protocol_epsilon_approx(&params, sum_p_sq, delta_0, delta_1).unwrap();
    assert!(approx_single.epsilon > pure_single.epsilon);
    assert!(approx_single.epsilon >= 8.0 * eps0 * 0.0); // sanity: finite and non-negative
}

/// The LDP fallback caps the reported guarantee at ε₀ for tiny populations.
#[test]
fn fallback_guarantee_for_tiny_populations() {
    let params = AccountantParams::with_defaults(64, 1.5).unwrap();
    let amplified = all_protocol_epsilon(&params, 1.0 / 64.0, 1.0).unwrap();
    assert!(amplified.epsilon > 1.5);
    let best = best_of(amplified, &params);
    assert_eq!(best, ldp_fallback(&params));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both protocol bounds are monotone in the mixing quality: a smaller
    /// `Σ P²` (better mixing) never yields a larger ε.
    #[test]
    fn epsilon_is_monotone_in_sum_p_squared(
        eps0 in 0.1f64..3.0,
        n in 1_000usize..1_000_000,
        gamma_lo in 1.0f64..5.0,
        gamma_extra in 0.1f64..30.0,
    ) {
        let params = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
        let s_lo = gamma_lo / n as f64;
        let s_hi = ((gamma_lo + gamma_extra) / n as f64).min(1.0);
        let all_lo = all_protocol_epsilon(&params, s_lo, 1.0).unwrap().epsilon;
        let all_hi = all_protocol_epsilon(&params, s_hi, 1.0).unwrap().epsilon;
        prop_assert!(all_lo <= all_hi + 1e-12);
        let single_lo = single_protocol_epsilon(&params, s_lo).unwrap().epsilon;
        let single_hi = single_protocol_epsilon(&params, s_hi).unwrap().epsilon;
        prop_assert!(single_lo <= single_hi + 1e-12);
    }

    /// Both protocol bounds are monotone in ε₀.
    #[test]
    fn epsilon_is_monotone_in_epsilon_0(
        eps0 in 0.1f64..2.5,
        bump in 0.01f64..1.0,
        n in 1_000usize..500_000,
        gamma in 1.0f64..20.0,
    ) {
        let s = (gamma / n as f64).min(1.0);
        let lo = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
        let hi = AccountantParams::new(n, eps0 + bump, DELTA, DELTA).unwrap();
        prop_assert!(
            all_protocol_epsilon(&lo, s, 1.0).unwrap().epsilon
                <= all_protocol_epsilon(&hi, s, 1.0).unwrap().epsilon + 1e-12
        );
        prop_assert!(
            single_protocol_epsilon(&lo, s).unwrap().epsilon
                <= single_protocol_epsilon(&hi, s).unwrap().epsilon + 1e-12
        );
    }

    /// For a regular graph at stationarity the amplified ε shrinks roughly
    /// like 1/√n: quadrupling n at least halves the dominant term (checked
    /// with 10% slack to absorb the lower-order terms).
    #[test]
    fn single_protocol_scales_like_inverse_sqrt_n(
        eps0 in 0.2f64..1.5,
        n in 10_000usize..200_000,
    ) {
        let small = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
        let large = AccountantParams::new(4 * n, eps0, DELTA, DELTA).unwrap();
        let eps_small = single_protocol_epsilon(&small, 1.0 / n as f64).unwrap().epsilon;
        let eps_large = single_protocol_epsilon(&large, 1.0 / (4 * n) as f64).unwrap().epsilon;
        prop_assert!(eps_large <= eps_small / 2.0 * 1.1,
            "eps({}) = {eps_small}, eps({}) = {eps_large}", n, 4 * n);
    }

    /// The guarantees returned by the accountant are always well-formed.
    #[test]
    fn guarantees_are_well_formed(
        eps0 in 0.05f64..4.0,
        n in 100usize..1_000_000,
        gamma in 1.0f64..50.0,
    ) {
        let params = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
        let s = (gamma / n as f64).min(1.0);
        let all = all_protocol_epsilon(&params, s, 1.0).unwrap();
        let single = single_protocol_epsilon(&params, s).unwrap();
        prop_assert!(all.epsilon.is_finite() && all.epsilon >= 0.0);
        prop_assert!(single.epsilon.is_finite() && single.epsilon >= 0.0);
        prop_assert!(all.delta > 0.0 && all.delta < 1.0);
        prop_assert!(single.delta > 0.0 && single.delta < 1.0);
    }
}
