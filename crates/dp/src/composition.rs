//! Composition theorems for differential privacy.
//!
//! The proof of the paper's main theorems composes the per-output-slot
//! guarantees `ε_1, …, ε_n` with the *heterogeneous advanced composition*
//! theorem of Kairouz–Oh–Viswanath (Eq. 6 of the paper):
//!
//! ```text
//! ε = Σ_i (e^{ε_i} − 1) ε_i / (e^{ε_i} + 1)  +  √(2 log(1/δ) Σ_i ε_i²)
//! ```
//!
//! Basic and (homogeneous) advanced composition are also provided for
//! comparison and for use by the examples.

use crate::types::{validate_delta, DpError, PrivacyGuarantee, Result};

/// Basic (sequential) composition: ε and δ add up.
///
/// # Errors
///
/// Propagates [`PrivacyGuarantee::new`] validation (e.g. combined δ ≥ 1).
pub fn basic_composition(guarantees: &[PrivacyGuarantee]) -> Result<PrivacyGuarantee> {
    let epsilon = guarantees.iter().map(|g| g.epsilon).sum();
    let delta = guarantees.iter().map(|g| g.delta).sum();
    PrivacyGuarantee::new(epsilon, delta)
}

/// Homogeneous advanced composition for `k` invocations of an `(ε, δ)`-DP
/// mechanism, with slack `δ'`:
///
/// ```text
/// ε_total = √(2k ln(1/δ')) ε + k ε (e^ε − 1),   δ_total = k δ + δ'
/// ```
///
/// # Errors
///
/// [`DpError::InvalidEpsilon`] / [`DpError::InvalidDelta`] on invalid inputs.
pub fn advanced_composition(
    epsilon: f64,
    delta: f64,
    k: usize,
    delta_slack: f64,
) -> Result<PrivacyGuarantee> {
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err(DpError::InvalidEpsilon(epsilon));
    }
    if !delta.is_finite() || !(0.0..1.0).contains(&delta) {
        return Err(DpError::InvalidDelta(delta));
    }
    let delta_slack = validate_delta(delta_slack)?;
    let kf = k as f64;
    let eps_total = (2.0 * kf * (1.0 / delta_slack).ln()).sqrt() * epsilon
        + kf * epsilon * (epsilon.exp() - 1.0);
    PrivacyGuarantee::new(eps_total, kf * delta + delta_slack)
}

/// Heterogeneous advanced composition (Kairouz–Oh–Viswanath; Eq. 6 of the
/// paper) of pure-DP mechanisms with parameters `epsilons`, at slack `delta`.
///
/// # Errors
///
/// [`DpError::InvalidEpsilon`] if any ε is negative or non-finite;
/// [`DpError::InvalidDelta`] if `delta ∉ (0, 1)`.
pub fn heterogeneous_advanced_composition(epsilons: &[f64], delta: f64) -> Result<f64> {
    let delta = validate_delta(delta)?;
    let mut linear_term = 0.0;
    let mut sum_sq = 0.0;
    for &eps in epsilons {
        if !eps.is_finite() || eps < 0.0 {
            return Err(DpError::InvalidEpsilon(eps));
        }
        let e = eps.exp();
        linear_term += (e - 1.0) * eps / (e + 1.0);
        sum_sq += eps * eps;
    }
    Ok(linear_term + (2.0 * (1.0 / delta).ln() * sum_sq).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_composition_adds() {
        let gs = vec![
            PrivacyGuarantee::new(0.5, 1e-7).unwrap(),
            PrivacyGuarantee::new(0.25, 2e-7).unwrap(),
            PrivacyGuarantee::pure(0.25).unwrap(),
        ];
        let total = basic_composition(&gs).unwrap();
        assert!((total.epsilon - 1.0).abs() < 1e-12);
        assert!((total.delta - 3e-7).abs() < 1e-18);
        // Empty composition is the trivial guarantee.
        let empty = basic_composition(&[]).unwrap();
        assert_eq!(empty.epsilon, 0.0);
    }

    #[test]
    fn advanced_beats_basic_for_many_small_epsilons() {
        let eps = 0.01;
        let k = 10_000usize;
        let basic = eps * k as f64;
        let adv = advanced_composition(eps, 0.0, k, 1e-6).unwrap();
        assert!(
            adv.epsilon < basic,
            "advanced {} should beat basic {}",
            adv.epsilon,
            basic
        );
        assert!((adv.delta - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn advanced_composition_validates() {
        assert!(advanced_composition(-0.1, 0.0, 10, 1e-6).is_err());
        assert!(advanced_composition(0.1, 1.0, 10, 1e-6).is_err());
        assert!(advanced_composition(0.1, 0.0, 10, 0.0).is_err());
    }

    #[test]
    fn heterogeneous_matches_hand_computation() {
        // Single mechanism: eps = (e^a - 1)a/(e^a + 1) + a sqrt(2 ln(1/delta)).
        let a = 0.3f64;
        let delta = 1e-6;
        let expected =
            (a.exp() - 1.0) * a / (a.exp() + 1.0) + (2.0 * (1.0f64 / delta).ln() * a * a).sqrt();
        let got = heterogeneous_advanced_composition(&[a], delta).unwrap();
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_is_monotone_in_inputs() {
        let delta = 1e-6;
        let small = heterogeneous_advanced_composition(&[0.1; 100], delta).unwrap();
        let large = heterogeneous_advanced_composition(&[0.2; 100], delta).unwrap();
        assert!(large > small);
        let fewer = heterogeneous_advanced_composition(&[0.1; 50], delta).unwrap();
        assert!(fewer < small);
    }

    #[test]
    fn heterogeneous_of_zero_epsilons_is_zero() {
        let got = heterogeneous_advanced_composition(&[0.0; 10], 1e-6).unwrap();
        assert_eq!(got, 0.0);
    }

    #[test]
    fn heterogeneous_validates_inputs() {
        assert!(heterogeneous_advanced_composition(&[0.1, -0.2], 1e-6).is_err());
        assert!(heterogeneous_advanced_composition(&[0.1], 0.0).is_err());
        assert!(heterogeneous_advanced_composition(&[f64::NAN], 1e-6).is_err());
    }
}
