//! `nsctl` — attach to a durable run directory and report what the
//! telemetry layer left behind.
//!
//! ```text
//! nsctl stats <dir>   # round rate, quote trajectory, WAL lag, phase tables
//! nsctl demo  <dir>   # build a tiny instrumented durable run to stat
//! nsctl <dir>         # shorthand for stats
//! ```
//!
//! `stats` reads the four store artifacts — `meta.bin`, `wal.bin`,
//! `trace.jsonl`, `metrics.txt` — entirely offline; it never touches the
//! coordinator, so it can run while (or after) the producing process does.
//! The JSONL trace is validated against the in-repo schema first and a
//! malformed trace exits with status 2, which is what CI leans on.

use network_shuffle::prelude::AccountantParams;
use ns_graph::generators::random_regular;
use ns_graph::prelude::Partition;
use ns_graph::rng::seeded_rng;
use ns_obs::say;
use ns_obs::MetricsRegistry;
use ns_store::prelude::*;
use std::path::Path;
use std::process::ExitCode;

const TOPIC: &str = "nsctl";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, dir) = match args.as_slice() {
        [one] if one != "stats" && one != "demo" => ("stats", one.as_str()),
        [mode, dir] if mode == "stats" || mode == "demo" => (mode.as_str(), dir.as_str()),
        _ => {
            say!(TOPIC, "usage: nsctl [stats|demo] <store-dir>");
            return ExitCode::FAILURE;
        }
    };
    let dir = Path::new(dir);
    let run = match mode {
        "demo" => demo(dir),
        _ => stats(dir),
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            say!(TOPIC, "error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds a small fully-instrumented durable run in `dir` (wiped first), so
/// there is something to `stats` — and so CI can smoke the whole surface.
fn demo(dir: &Path) -> std::result::Result<ExitCode, Box<dyn std::error::Error>> {
    let n = 60;
    let rounds = 12;
    let seed = 2022;
    let _ = std::fs::remove_dir_all(dir);
    let graph = random_regular(n, 4, &mut seeded_rng(seed))?;
    let partition = Partition::new(&graph, 2)?;
    let config = network_shuffle::prelude::CoordinatorConfig::all(seed, usize::MAX);
    let durable = DurableConfig {
        group_commit: 2,
        snapshot_every: 4,
    };
    let params = AccountantParams::new(n, 1.0, 1e-6, 1e-6)?;

    let mut store = DurableCoordinator::create(&graph, &partition, config, durable, dir)?;
    let registry = MetricsRegistry::new();
    store.attach_telemetry(&registry, Some(params));
    store.admit_population((0..n).map(|i| vec![i as u8]).collect())?;
    store.begin_exchange()?;
    // One refused batch so the audit log has both decision kinds.
    let _ = store.admit(vec![(0, vec![0xFF])]);
    store.run_rounds(rounds)?;
    store.flush_observability()?;
    say!(
        TOPIC,
        "demo run written to {}: n={n}, {rounds} rounds, snapshot every {}",
        dir.display(),
        durable.snapshot_every
    );
    Ok(ExitCode::SUCCESS)
}

fn stats(dir: &Path) -> std::result::Result<ExitCode, Box<dyn std::error::Error>> {
    // -- meta + WAL: what the durable runtime can prove from disk alone.
    let meta = load_meta(dir)?;
    say!(
        TOPIC,
        "store {}: {} users over {} shards",
        dir.display(),
        meta.node_count,
        meta.shard_count
    );
    let scan = scan_wal(dir.join(WAL_FILE))?;
    let mut admissions = 0usize;
    let mut logged_rounds = 0u64;
    let mut last_snapshot: Option<u64> = None;
    let mut finalized: Option<u64> = None;
    for payload in &scan.records {
        match WalRecord::decode(payload)? {
            WalRecord::AdmittedBatch { .. } => admissions += 1,
            WalRecord::Round { round, .. } => logged_rounds = round + 1,
            WalRecord::SnapshotMarker { round } => last_snapshot = Some(round),
            WalRecord::Finalized { round } => finalized = Some(round),
            WalRecord::BeginExchange | WalRecord::ScheduleAttached { .. } => {}
        }
    }
    say!(
        TOPIC,
        "wal: {} records / {} bytes valid, tail {:?}",
        scan.records.len(),
        scan.valid_len,
        scan.tail
    );
    let lag = logged_rounds.saturating_sub(last_snapshot.unwrap_or(0));
    match last_snapshot {
        Some(round) => say!(
            TOPIC,
            "wal lag: {lag} round record(s) past the last snapshot (round {round})"
        ),
        None => say!(
            TOPIC,
            "wal lag: no snapshot yet; full {logged_rounds}-round replay"
        ),
    }
    say!(
        TOPIC,
        "lifecycle: {admissions} admitted batch(es), {logged_rounds} rounds logged{}",
        match finalized {
            Some(round) => format!(", finalized at round {round}"),
            None => ", epoch still open".to_string(),
        }
    );

    // -- trace.jsonl: schema-checked, then mined for the live trajectory.
    let trace_path = dir.join(TRACE_FILE);
    if trace_path.exists() {
        let text = std::fs::read_to_string(&trace_path)?;
        let events = match ns_obs::schema::validate_jsonl(&text) {
            Ok(events) => events,
            Err(e) => {
                say!(TOPIC, "trace.jsonl FAILED schema validation: {e}");
                return Ok(ExitCode::from(2));
            }
        };
        say!(TOPIC, "trace: {events} event(s), schema ok");
        report_trace(&text);
    } else {
        say!(
            TOPIC,
            "trace: no trace.jsonl (run without telemetry attached?)"
        );
    }

    // -- metrics.txt: the rendered phase-time and counter tables.
    let metrics_path = dir.join(METRICS_FILE);
    if metrics_path.exists() {
        say!(TOPIC, "metrics ({}):", metrics_path.display());
        for line in std::fs::read_to_string(&metrics_path)?.lines() {
            say!(TOPIC, "  {line}");
        }
    } else {
        say!(TOPIC, "metrics: no metrics.txt");
    }
    Ok(ExitCode::SUCCESS)
}

/// Summarizes the structured trace: per-kind counts, observed round rate
/// and the worst-user quote trajectory.
fn report_trace(text: &str) {
    let mut first_round: Option<(f64, f64)> = None; // (ts, round)
    let mut last_round: Option<(f64, f64)> = None;
    let mut first_eps: Option<f64> = None;
    let mut last_eps: Option<f64> = None;
    let mut last_wal_len: Option<f64> = None;
    let mut counts: Vec<(String, usize)> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(ev) = json_str(line, "ev") {
            match counts.iter_mut().find(|(k, _)| k == ev) {
                Some((_, c)) => *c += 1,
                None => counts.push((ev.to_string(), 1)),
            }
            if ev == "round" {
                let ts = json_num(line, "ts");
                let round = json_num(line, "round");
                if let (Some(ts), Some(round)) = (ts, round) {
                    if first_round.is_none() {
                        first_round = Some((ts, round));
                    }
                    last_round = Some((ts, round));
                }
                if let Some(eps) = json_num(line, "epsilon") {
                    if first_eps.is_none() {
                        first_eps = Some(eps);
                    }
                    last_eps = Some(eps);
                }
                if let Some(len) = json_num(line, "wal_len") {
                    last_wal_len = Some(len);
                }
            }
        }
    }
    let kinds: Vec<String> = counts.iter().map(|(k, c)| format!("{k}×{c}")).collect();
    say!(TOPIC, "trace kinds: {}", kinds.join(", "));
    if let (Some((t0, r0)), Some((t1, r1))) = (first_round, last_round) {
        if t1 > t0 && r1 > r0 {
            let rate = (r1 - r0) / ((t1 - t0) / 1e9);
            say!(
                TOPIC,
                "round rate: {rate:.1} rounds/s over rounds {r0:.0}..{r1:.0}"
            );
        } else {
            say!(TOPIC, "round rate: n/a (single round event)");
        }
    }
    if let (Some(first), Some(last)) = (first_eps, last_eps) {
        say!(
            TOPIC,
            "quote trajectory: ε {first:.4} → {last:.4} (worst user, live)"
        );
    } else {
        say!(
            TOPIC,
            "quote trajectory: not recorded (no quote params attached)"
        );
    }
    if let Some(len) = last_wal_len {
        say!(TOPIC, "wal length at last round event: {len:.0} bytes");
    }
}

/// Extracts `"key": <number>` from one flat JSONL line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts `"key": "<string>"` from one flat JSONL line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    rest.split('"').next()
}
