//! Figure 5 — exact ε vs. rounds on k-regular graphs.
//!
//! On k-regular graphs the position distribution of a report can be tracked
//! exactly (the "symmetric distribution" scenario), so the central ε of
//! `A_all` is computed per round via Theorem 5.4.  Larger k mixes faster and
//! converges to the asymptotic value sooner; early rounds show the
//! non-monotonic "oscillation" the paper notes.
//!
//! ```text
//! cargo run --release -p ns-bench --bin fig5
//! ```

use network_shuffle::prelude::*;
use ns_bench::{fmt, print_table, write_csv, DELTA, SEED};
use ns_graph::generators::random_regular;

fn main() {
    let n = 10_000usize;
    let epsilon_0 = 2.0;
    let degrees = [3usize, 5, 10, 20];
    let max_rounds = 40usize;

    let params = AccountantParams::new(n, epsilon_0, DELTA, DELTA).expect("valid params");
    let mut columns = Vec::new();
    for &k in &degrees {
        let mut rng = ns_graph::rng::seeded_rng(SEED ^ k as u64);
        let graph = random_regular(n, k, &mut rng).expect("regular graph");
        let accountant = NetworkShuffleAccountant::new(&graph).expect("ergodic graph");
        let sweep = accountant
            .epsilon_vs_rounds(
                ProtocolKind::All,
                Scenario::Symmetric { origin: 0 },
                &params,
                max_rounds,
            )
            .expect("sweep");
        println!(
            "k = {k}: spectral gap = {:.4}",
            accountant.mixing_profile().spectral_gap
        );
        columns.push(sweep);
    }

    let headers: Vec<String> = std::iter::once("rounds t".to_string())
        .chain(degrees.iter().map(|k| format!("k = {k}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for t in 1..=max_rounds {
        let mut row = vec![t.to_string()];
        for column in &columns {
            row.push(fmt(column[t - 1].1));
        }
        rows.push(row);
    }

    print_table(
        "Figure 5: exact central epsilon (A_all, symmetric scenario) vs. rounds on k-regular graphs, n = 10,000, eps0 = 2",
        &header_refs,
        &rows,
    );
    write_csv("fig5", &header_refs, &rows);
    println!(
        "\nshape check: larger k converges to the asymptotic epsilon in fewer rounds, matching\n\
         Figure 5; small-k curves wobble in the first rounds before spreading out."
    );
}
