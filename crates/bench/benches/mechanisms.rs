//! Micro-benchmarks of the local randomizers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ns_dp::mechanisms::{Laplace, PrivUnit, RandomizedResponse};
use ns_dp::rng::seeded_rng;
use ns_dp::LocalRandomizer;

fn bench_randomized_response(c: &mut Criterion) {
    let rr = RandomizedResponse::new(16, 1.0).expect("mechanism");
    let mut rng = seeded_rng(1);
    c.bench_function("randomized_response_k16", |b| {
        b.iter(|| black_box(rr.randomize(&3, &mut rng).expect("report")))
    });
}

fn bench_laplace(c: &mut Criterion) {
    let lap = Laplace::new(0.0, 1.0, 1.0).expect("mechanism");
    let mut rng = seeded_rng(2);
    c.bench_function("laplace_unit_interval", |b| {
        b.iter(|| black_box(lap.randomize(&0.5, &mut rng).expect("report")))
    });
}

fn bench_priv_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("priv_unit");
    group.sample_size(20);
    group.bench_function("construct_d200", |b| {
        b.iter(|| black_box(PrivUnit::new(200, 1.0).expect("mechanism")))
    });
    let mech = PrivUnit::new(200, 1.0).expect("mechanism");
    let mut input = vec![0.0; 200];
    input[0] = 1.0;
    let mut rng = seeded_rng(3);
    group.bench_function("randomize_d200", |b| {
        b.iter(|| black_box(mech.randomize(&input, &mut rng).expect("report")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_randomized_response,
    bench_laplace,
    bench_priv_unit
);
criterion_main!(benches);
