//! Batched mixing engine vs. the seed's per-client round loop.
//!
//! The acceptance bar for the engine refactor: at n = 100_000 users and
//! t = 30 rounds, the batched `run_protocol` must beat the preserved
//! per-client reference loop by at least 2×.  Besides the criterion-style
//! per-path timings, `bench_speedup_ratio` times both paths back to back on
//! identical inputs and prints the ratio directly.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use network_shuffle::simulation::reference::run_protocol_reference;
use network_shuffle::simulation::{run_protocol, SimulationConfig};
use ns_graph::generators::random_regular;
use ns_graph::mixing_engine::MixingEngine;
use ns_graph::rng::seeded_rng;
use ns_graph::walk::WalkConfig;
use ns_graph::Graph;
use std::time::Instant;

const USERS: usize = 100_000;
const DEGREE: usize = 8;
const ROUNDS: usize = 30;

fn graph() -> Graph {
    random_regular(USERS, DEGREE, &mut seeded_rng(1)).expect("graph")
}

fn bench_protocol_paths(c: &mut Criterion) {
    let graph = graph();
    let mut group = c.benchmark_group("protocol_100k_30r");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("batched_engine", USERS), &graph, |b, g| {
        b.iter(|| {
            let payloads: Vec<u32> = (0..USERS as u32).collect();
            let outcome =
                run_protocol(g, payloads, SimulationConfig::all(ROUNDS, 7), |_| 0).expect("run");
            black_box(outcome.metrics.total_messages())
        });
    });
    group.bench_with_input(
        BenchmarkId::new("reference_per_client", USERS),
        &graph,
        |b, g| {
            b.iter(|| {
                let payloads: Vec<u32> = (0..USERS as u32).collect();
                let outcome =
                    run_protocol_reference(g, payloads, SimulationConfig::all(ROUNDS, 7), |_| 0)
                        .expect("run");
                black_box(outcome.metrics.total_messages())
            });
        },
    );
    group.finish();
}

fn bench_engine_rounds(c: &mut Criterion) {
    let graph = graph();
    let mut group = c.benchmark_group("engine_rounds_100k");
    group.sample_size(10);
    group.bench_function("walker_order_30r", |b| {
        let mut rng = seeded_rng(3);
        b.iter(|| {
            let mut engine = MixingEngine::one_walker_per_node(&graph).expect("engine");
            engine
                .run(WalkConfig::simple(ROUNDS), &mut rng)
                .expect("run");
            black_box(engine.positions().len())
        });
    });
    group.bench_function("holder_order_30r", |b| {
        let mut rng = seeded_rng(4);
        b.iter(|| {
            let mut engine = MixingEngine::one_walker_per_node(&graph).expect("engine");
            engine
                .run_holder_observed(WalkConfig::simple(ROUNDS), &mut rng, &mut ())
                .expect("run");
            black_box(engine.positions().len())
        });
    });
    group.finish();
}

/// Times both protocol paths back to back and prints the speedup ratio —
/// the number the acceptance criterion asks for.
fn bench_speedup_ratio(_c: &mut Criterion) {
    let graph = graph();
    let time = |f: &dyn Fn() -> usize| {
        // One warm-up, then the best of three timed runs.
        f();
        (0..3)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let batched = time(&|| {
        let payloads: Vec<u32> = (0..USERS as u32).collect();
        run_protocol(&graph, payloads, SimulationConfig::all(ROUNDS, 7), |_| 0)
            .expect("run")
            .metrics
            .total_messages()
    });
    let reference = time(&|| {
        let payloads: Vec<u32> = (0..USERS as u32).collect();
        run_protocol_reference(&graph, payloads, SimulationConfig::all(ROUNDS, 7), |_| 0)
            .expect("run")
            .metrics
            .total_messages()
    });
    println!(
        "speedup: batched engine {batched:.3} s vs reference per-client {reference:.3} s \
         -> {:.2}x (n = {USERS}, rounds = {ROUNDS})",
        reference / batched
    );
}

criterion_group!(
    benches,
    bench_protocol_paths,
    bench_engine_rounds,
    bench_speedup_ratio
);
criterion_main!(benches);
