//! Churn ablation — what the static dropout reduction gets wrong.
//!
//! On the Twitch stand-in, the worst user's **exact** central ε (`A_single`)
//! is swept over rounds for three realized outage processes with the *same*
//! 20% average unavailability:
//!
//! * i.i.d. dropout (the paper's model — laziness-equivalent by design),
//! * bursty Markov on-off churn (outages persist across rounds),
//! * an adversarial region blackout (40% of the network dark for the first
//!   half of the budget).
//!
//! Each realized schedule is attached to the exact accountant
//! ([`NetworkShuffleAccountant::with_schedule`]), so every origin's
//! distribution evolves through the actual product of per-round masked
//! operators.  Reference columns: the exact static walk (no churn) and the
//! lazy-walk *stationary bound* at laziness 0.2 — the scalar summary a
//! static analysis would quote for all three processes.
//!
//! ```text
//! cargo run --release -p ns-bench --bin ablation_churn
//! ```

use network_shuffle::prelude::*;
use ns_bench::{fmt, print_table, scale_divisor, write_csv, DELTA, SEED};
use ns_datasets::Dataset;

fn main() {
    let epsilon_0 = 2.0;
    // Exact all-origin accounting is O(n · t · m): run the ablation on a
    // quarter-scale Twitch stand-in (~2.4k users) so the full sweep stays
    // interactive on one core.
    let divisor = scale_divisor(Dataset::Twitch).max(4);
    let generated = Dataset::Twitch
        .generate_scaled(divisor, SEED)
        .expect("twitch stand-in");
    let graph = &generated.graph;
    let n = graph.node_count();

    let accountant = NetworkShuffleAccountant::new(graph).expect("ergodic graph");
    let t_mix = accountant.mixing_time();
    let rounds = (2 * t_mix).max(10);
    let params =
        AccountantParams::new(n, epsilon_0, DELTA, DELTA).expect("valid accountant params");
    println!(
        "Twitch stand-in: n = {n}, m = {} edges, mixing time = {t_mix}, sweeping t = 1..={rounds}",
        graph.edge_count()
    );

    let mean_down = 0.2;
    let scenarios: Vec<(&str, OutageModel)> = vec![
        (
            "iid",
            OutageModel::Iid {
                dropout_probability: mean_down,
            },
        ),
        (
            "markov",
            // Stationary unavailability fail/(fail+recover) = 0.2, with
            // mean outage length 1/recover = 8 rounds: same average as the
            // i.i.d. column, very different correlation structure.
            OutageModel::MarkovOnOff {
                fail: 0.03125,
                recover: 0.125,
            },
        ),
        (
            "blackout",
            // 40% of the network dark for the first half of the budget:
            // region_fraction x window_fraction = 0.2, the same mean
            // unavailability as the other two columns.
            OutageModel::RegionBlackout {
                region: (0..2 * n / 5).collect(),
                from_round: 0,
                until_round: rounds / 2,
            },
        ),
    ];

    // Reference sweeps: exact static, and the lazy stationary bound the
    // static reduction would quote for every scenario.
    let exact_static = accountant
        .epsilon_vs_rounds(ProtocolKind::Single, Scenario::Exact, &params, rounds)
        .expect("static exact sweep");
    let lazy_bound = NetworkShuffleAccountant::with_laziness(graph, mean_down)
        .expect("lazy accountant")
        .epsilon_vs_rounds(ProtocolKind::Single, Scenario::Stationary, &params, rounds)
        .expect("lazy bound sweep");

    let mut columns: Vec<(String, Vec<(usize, f64)>)> = vec![
        ("exact static".to_string(), exact_static),
        (format!("lazy bound q={mean_down}"), lazy_bound),
    ];
    for (name, model) in &scenarios {
        let schedule = model
            .sample_schedule(n, rounds, SEED)
            .expect("outage schedule");
        let realized_down: f64 = (0..rounds)
            .map(|t| 1.0 - schedule.available_fraction(t))
            .sum::<f64>()
            / rounds as f64;
        println!(
            "{name}: mean unavailability target {:.3}, realized {realized_down:.3}",
            model.mean_unavailability(n, rounds)
        );
        let scheduled = accountant
            .clone()
            .with_schedule(
                schedule
                    .time_varying_model(graph, 0.0)
                    .expect("schedule lifts onto the graph"),
            )
            .expect("schedule attaches");
        let sweep = scheduled
            .epsilon_vs_rounds(ProtocolKind::Single, Scenario::Exact, &params, rounds)
            .expect("scheduled exact sweep");
        columns.push((format!("exact {name}"), sweep));
    }

    let headers: Vec<String> = std::iter::once("rounds t".to_string())
        .chain(columns.iter().map(|(name, _)| name.clone()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let checkpoints: Vec<usize> = {
        let mut t = 1usize;
        let mut out = Vec::new();
        while t <= rounds {
            out.push(t);
            t = ((t as f64) * 1.5).ceil() as usize;
        }
        out.push(rounds);
        out.dedup();
        out
    };
    let rows: Vec<Vec<String>> = checkpoints
        .iter()
        .map(|&t| {
            std::iter::once(t.to_string())
                .chain(columns.iter().map(|(_, sweep)| fmt(sweep[t - 1].1)))
                .collect()
        })
        .collect();

    print_table(
        "Churn ablation: worst-user exact epsilon (A_single) vs rounds, 20% mean unavailability",
        &header_refs,
        &rows,
    );
    write_csv("ablation_churn", &header_refs, &rows);

    // How far off is the scalar reduction at the static stopping time?
    let at = t_mix.min(rounds);
    let bound_eps = columns[1].1[at - 1].1;
    println!(
        "\nat the static stopping time t = {at} (lazy-bound quote: eps = {}):",
        fmt(bound_eps)
    );
    for (name, sweep) in columns.iter().skip(2) {
        let eps = sweep[at - 1].1;
        let ratio = eps / bound_eps;
        println!(
            "  {name}: exact worst-user eps = {} — the static quote {}-states the realized loss {:.1}x",
            fmt(eps),
            if eps > bound_eps { "under" } else { "over" },
            if ratio >= 1.0 { ratio } else { 1.0 / ratio }
        );
    }
    println!(
        "\nshape check: the i.i.d. column tracks the static exact curve (the paper's reduction is\n\
         exact there), the bursty Markov column lags it, and the blackout column stays worst —\n\
         correlated churn mixes slower than its average unavailability suggests."
    );
}
