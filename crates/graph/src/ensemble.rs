//! Batched evolution of *ensembles* of position distributions.
//!
//! The paper's theorems consume the graph only through `Σ_i P_i^G(t)²` (and
//! the support ratio `ρ*`) of the position distribution of a report.  On
//! vertex-transitive graphs one origin stands for all of them, but on the
//! irregular topologies this repository generates (Chung–Lu, Barabási–Albert,
//! SBM) every origin has its *own* distribution, and answering the per-user
//! question — "what guarantee does user `o` actually get?" — requires
//! evolving many distributions at once.
//!
//! [`DistributionEnsemble`] stores `sources` distributions as one flat
//! row-major `sources × n` buffer and advances all of them with a blocked
//! kernel: rows are processed [`LANES`] at a time, transposed into an
//! interleaved `n × lanes` scratch block, and evolved by
//! [`TransitionModel::propagate_interleaved`] with two scratch buffers
//! swapped per round — no per-step allocation.  For the CSR-backed
//! [`crate::transition::TransitionMatrix`] this streams the offsets/neighbour
//! arrays once per block instead of once per origin and turns the scattered
//! per-edge updates into contiguous `lanes`-wide ones, which is where the
//! multi-× speedup over a naive per-origin `propagate` loop comes from
//! (`crates/bench/benches/ensemble.rs`).
//!
//! Every lane reproduces the single-distribution update **bit for bit** (see
//! `TransitionModel::propagate_interleaved`'s contract), so
//! [`crate::distribution::PositionDistribution`] is a thin view over a 1-row
//! ensemble and exact multi-origin accounting agrees with the historical
//! single-origin route exactly.  With the `parallel` cargo feature, blocks
//! are dealt to threads (`DistributionEnsemble::advance_parallel`); blocks
//! never interact, so the parallel results are bitwise identical to the
//! sequential ones regardless of thread count.
//!
//! The module also provides bounded-memory drivers over *all* `n` origins
//! ([`all_origin_moments`], [`all_origin_trajectories`]): the full ensemble
//! would be an `n × n` matrix (80 GB at `n = 100 000`), so origins are
//! streamed through in batches of [`batch capacity`](DistributionEnsemble)
//! rows and reduced to their accounting moments on the fly.

use crate::error::{GraphError, Result};
use crate::graph::NodeId;
use crate::transition::TransitionModel;
use serde::{Deserialize, Serialize};

/// Rows per kernel block: 8 lanes × 8-byte f64 = one 64-byte cache line per
/// delivered share.
pub const LANES: usize = 8;

/// Per-buffer memory target of the streaming all-origin drivers, in bytes.
const BATCH_TARGET_BYTES: usize = 64 << 20;

/// The accounting moments of one position distribution: exactly the two
/// quantities Theorems 5.3–5.6 consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RowStats {
    /// `Σ_i P_i²` — the collision probability of the distribution.
    pub sum_of_squares: f64,
    /// Support ratio `ρ* = max_i P_i / min_{i: P_i > 0} P_i`, with the
    /// accountant's convention of `1.0` when undefined.
    pub support_ratio: f64,
}

impl Default for RowStats {
    fn default() -> Self {
        RowStats {
            sum_of_squares: 0.0,
            support_ratio: 1.0,
        }
    }
}

/// Computes [`RowStats`] from a distribution's entries in index order.
///
/// The fold orders replicate `degree::sum_of_squares` and
/// `PositionDistribution::support_ratio` element for element, so the stats
/// of an ensemble row are bitwise equal to the single-distribution routes.
fn stats_of(values: impl Iterator<Item = f64>) -> RowStats {
    let mut sum_of_squares = 0.0f64;
    let mut max = f64::NAN;
    let mut min_nonzero = f64::INFINITY;
    for x in values {
        sum_of_squares += x * x;
        max = max.max(x);
        if x > 0.0 {
            min_nonzero = min_nonzero.min(x);
        }
    }
    let support_ratio = if !max.is_finite() || !min_nonzero.is_finite() || min_nonzero == 0.0 {
        1.0
    } else {
        max / min_nonzero
    };
    RowStats {
        sum_of_squares,
        support_ratio,
    }
}

/// Per-round, per-row statistics recorded by
/// [`DistributionEnsemble::advance_tracked`].
///
/// Entry `(row, t)` (with `t` counted `1..=rounds` from the state the
/// ensemble was in when the advance started) is the [`RowStats`] of row
/// `row` *after* `t` of the tracked rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleTrajectory {
    sources: usize,
    rounds: usize,
    /// Row-major `[row * rounds + (t - 1)]`.
    stats: Vec<RowStats>,
}

impl EnsembleTrajectory {
    /// Number of tracked rows.
    pub fn sources(&self) -> usize {
        self.sources
    }

    /// Number of tracked rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Stats of `row` after `t` rounds (`t` in `1..=rounds`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `t` is out of range.
    pub fn after(&self, row: usize, t: usize) -> RowStats {
        assert!(
            (1..=self.rounds).contains(&t),
            "round {t} outside 1..={}",
            self.rounds
        );
        self.stats[row * self.rounds + (t - 1)]
    }

    /// The per-round stats of one row, index `t - 1` holding round `t`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[RowStats] {
        &self.stats[row * self.rounds..(row + 1) * self.rounds]
    }
}

/// A batch of position distributions evolved in lockstep under one
/// transition model.
///
/// Rows are stored contiguously (`sources × n`, row-major); row `r` is the
/// distribution of source `r`'s report.  See the [module docs](self) for the
/// kernel design.  Deliberately not (de)serializable: deserialization would
/// bypass the shape/probability invariants the constructors enforce.  The
/// durable runtime instead round-trips ensembles through
/// [`DistributionEnsemble::row`] / [`DistributionEnsemble::from_rows_at`],
/// which re-validates every row and restores the round clock on load.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionEnsemble {
    sources: usize,
    nodes: usize,
    /// Row-major `sources × nodes` probability buffer.
    data: Vec<f64>,
    /// Rounds applied so far.
    time: usize,
}

impl DistributionEnsemble {
    /// An ensemble of point masses: row `r` starts with all mass on
    /// `origins[r]`, the state of report `r` at `t = 0`.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] if `n == 0` or no origins are given;
    /// [`GraphError::NodeOutOfRange`] if an origin is `>= n`.
    pub fn point_masses(n: usize, origins: &[NodeId]) -> Result<Self> {
        if n == 0 || origins.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(&bad) = origins.iter().find(|&&o| o >= n) {
            return Err(GraphError::NodeOutOfRange {
                node: bad,
                node_count: n,
            });
        }
        let mut data = vec![0.0; origins.len() * n];
        for (row, &origin) in origins.iter().enumerate() {
            data[row * n + origin] = 1.0;
        }
        Ok(DistributionEnsemble {
            sources: origins.len(),
            nodes: n,
            data,
            time: 0,
        })
    }

    /// The full identity ensemble: one point-mass row per node.
    ///
    /// This materializes an `n × n` buffer — fine for analysis-sized graphs,
    /// but for large `n` prefer the streaming [`all_origin_moments`] /
    /// [`all_origin_trajectories`] drivers, which never hold more than a
    /// bounded batch of rows.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] if `n == 0`.
    pub fn all_origins(n: usize) -> Result<Self> {
        let origins: Vec<NodeId> = (0..n).collect();
        Self::point_masses(n, &origins)
    }

    /// Wraps `sources` explicit distributions given as one flat row-major
    /// buffer.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the buffer shape is inconsistent
    /// or some row is not a probability distribution (finite, non-negative,
    /// summing to 1 within `1e-9`).
    pub fn from_rows(sources: usize, flat: Vec<f64>) -> Result<Self> {
        if sources == 0 || flat.is_empty() || !flat.len().is_multiple_of(sources) {
            return Err(GraphError::InvalidParameters(format!(
                "cannot split a buffer of {} entries into {sources} rows",
                flat.len()
            )));
        }
        let n = flat.len() / sources;
        for (row, chunk) in flat.chunks_exact(n).enumerate() {
            if chunk.iter().any(|&x| x < 0.0 || !x.is_finite()) {
                return Err(GraphError::InvalidParameters(format!(
                    "row {row} has a negative or non-finite entry"
                )));
            }
            let total: f64 = chunk.iter().sum();
            if (total - 1.0).abs() > 1e-9 {
                return Err(GraphError::InvalidParameters(format!(
                    "row {row} sums to {total}, expected 1"
                )));
            }
        }
        Ok(DistributionEnsemble {
            sources,
            nodes: n,
            data: flat,
            time: 0,
        })
    }

    /// [`DistributionEnsemble::from_rows`] restored at an explicit round
    /// clock — the durable runtime's snapshot-restore constructor.  A
    /// mid-run ensemble is not at round 0: scheduled operators
    /// ([`crate::dynamic::TimeVaryingModel`]) index their schedule by this
    /// clock, so restoring rows without the clock would silently replay the
    /// wrong operators.  Validation is identical to `from_rows`.
    ///
    /// # Errors
    ///
    /// Same as [`DistributionEnsemble::from_rows`].
    pub fn from_rows_at(sources: usize, flat: Vec<f64>, time: usize) -> Result<Self> {
        let mut ensemble = Self::from_rows(sources, flat)?;
        ensemble.time = time;
        Ok(ensemble)
    }

    /// Wraps distributions whose invariants the caller already guarantees
    /// (used by [`crate::distribution::PositionDistribution`] to avoid
    /// re-validating on every delegated step).
    ///
    /// # Panics
    ///
    /// Panics if the buffer cannot be split into `sources` non-empty rows.
    pub fn from_rows_unchecked(sources: usize, flat: Vec<f64>) -> Self {
        assert!(
            sources > 0 && !flat.is_empty() && flat.len().is_multiple_of(sources),
            "cannot split a buffer of {} entries into {sources} rows",
            flat.len()
        );
        let nodes = flat.len() / sources;
        DistributionEnsemble {
            sources,
            nodes,
            data: flat,
            time: 0,
        }
    }

    /// Number of tracked distributions.
    pub fn sources(&self) -> usize {
        self.sources
    }

    /// Number of nodes each distribution ranges over.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Rounds applied so far.
    pub fn time(&self) -> usize {
        self.time
    }

    /// The distribution of source `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= sources`.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.nodes..(row + 1) * self.nodes]
    }

    /// Consumes the ensemble, returning the flat row-major buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// The accounting moments (`Σ_i P_i²`, support ratio) of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= sources`.
    pub fn row_stats(&self, row: usize) -> RowStats {
        stats_of(self.row(row).iter().copied())
    }

    /// The component-wise worst (largest) moments over all rows — a valid
    /// input for a guarantee that must cover every source at once.
    pub fn worst_stats(&self) -> RowStats {
        let mut worst = RowStats {
            sum_of_squares: 0.0,
            support_ratio: 1.0,
        };
        for row in 0..self.sources {
            let stats = self.row_stats(row);
            worst.sum_of_squares = worst.sum_of_squares.max(stats.sum_of_squares);
            worst.support_ratio = worst.support_ratio.max(stats.support_ratio);
        }
        worst
    }

    /// Advances every row by `rounds` rounds under `model`.
    ///
    /// # Panics
    ///
    /// Panics if `model.node_count()` differs from the ensemble's.
    pub fn advance<M: TransitionModel + ?Sized>(&mut self, model: &M, rounds: usize) {
        self.advance_seq(model, rounds, None);
    }

    /// Advances every row by `rounds` rounds, recording the [`RowStats`] of
    /// every row after every round — the incremental form behind
    /// ε-vs-rounds sweeps, which cost one ensemble pass instead of one pass
    /// per round.
    ///
    /// # Panics
    ///
    /// Panics if `model.node_count()` differs from the ensemble's.
    pub fn advance_tracked<M: TransitionModel + ?Sized>(
        &mut self,
        model: &M,
        rounds: usize,
    ) -> EnsembleTrajectory {
        let mut stats = vec![RowStats::default(); self.sources * rounds];
        self.advance_seq(model, rounds, Some(&mut stats));
        EnsembleTrajectory {
            sources: self.sources,
            rounds,
            stats,
        }
    }

    /// [`DistributionEnsemble::advance`], but with the row blocks dealt to
    /// threads when the `parallel` feature is enabled.  Falls back to the
    /// sequential path otherwise; the results are bitwise identical either
    /// way (blocks never interact).
    pub fn advance_auto<M: TransitionModel + Sync + ?Sized>(&mut self, model: &M, rounds: usize) {
        #[cfg(feature = "parallel")]
        self.advance_parallel(model, rounds);
        #[cfg(not(feature = "parallel"))]
        self.advance(model, rounds);
    }

    /// [`DistributionEnsemble::advance_tracked`] with the `parallel`-aware
    /// dispatch of [`DistributionEnsemble::advance_auto`].
    pub fn advance_tracked_auto<M: TransitionModel + Sync + ?Sized>(
        &mut self,
        model: &M,
        rounds: usize,
    ) -> EnsembleTrajectory {
        #[cfg(feature = "parallel")]
        {
            self.advance_tracked_parallel(model, rounds)
        }
        #[cfg(not(feature = "parallel"))]
        {
            self.advance_tracked(model, rounds)
        }
    }

    /// Speculative one-round advance for the delta-incremental runtime: the
    /// pre-advance rows are saved into `prev` (cleared and refilled, so a
    /// steady-state caller reuses its capacity) and every row is advanced one
    /// round under `held` — the operator the caller *currently* holds, which
    /// may be stale by the time the round's churn delta lands.
    ///
    /// Follow with [`DistributionEnsemble::correct_columns`] (small delta) or
    /// [`DistributionEnsemble::recompute_from`] (fallback) once the realized
    /// operator is known; see [`crate::delta`] for the affected-column set.
    ///
    /// # Panics
    ///
    /// Panics if `held.node_count()` differs from the ensemble's.
    pub fn speculate_auto<M: TransitionModel + Sync + ?Sized>(
        &mut self,
        held: &M,
        prev: &mut Vec<f64>,
    ) {
        prev.clear();
        prev.extend_from_slice(&self.data);
        self.advance_auto(held, 1);
    }

    /// Repairs a speculative advance: recomputes `out[j]` for every
    /// `j ∈ columns` of every row from the saved pre-advance rows `prev`,
    /// under the *realized* operator of the round just taken.
    ///
    /// After this call the ensemble is **bitwise** what a dense
    /// one-round advance under `realized` from `prev` would have produced —
    /// provided `columns` covers every column whose incoming mass can differ
    /// between the held and realized operators
    /// ([`crate::delta::affected_columns`] over the union of both deltas):
    /// unaffected columns receive the same shares in the same order under
    /// both operators, so the speculative values are already exact, and
    /// affected columns are overwritten through
    /// [`TransitionModel::propagate_round_columns`], whose per-column
    /// contract is bitwise the dense kernel's.  Cost is
    /// `O(sources · Σ_{j ∈ columns} deg(j))` instead of `O(sources · m)`.
    ///
    /// # Panics
    ///
    /// Panics if no round has been taken, `realized.node_count()` differs
    /// from the ensemble's, or `prev` has the wrong length.
    pub fn correct_columns<M: TransitionModel + ?Sized>(
        &mut self,
        realized: &M,
        columns: &[NodeId],
        prev: &[f64],
    ) {
        assert!(self.time > 0, "correct_columns needs a speculated round");
        assert_eq!(
            realized.node_count(),
            self.nodes,
            "transition model and ensemble disagree on the node count"
        );
        assert_eq!(prev.len(), self.data.len(), "prev has the wrong length");
        let base_round = self.time - 1;
        realized.propagate_round_columns_rows(
            base_round,
            self.sources,
            prev,
            &mut self.data,
            columns,
        );
    }

    /// [`DistributionEnsemble::speculate_auto`] that additionally leaves an
    /// **interleaved** copy of the pre-advance rows in `prev_il`
    /// (`prev_il[i * sources + r] == prev[r * n + i]`, see
    /// [`interleave_rows`]).
    ///
    /// The transpose is a streaming pass that rides along with the
    /// speculative advance — off the critical path — and is what makes the
    /// later [`DistributionEnsemble::correct_columns_interleaved`] fast: the
    /// correction gathers every tracked row's mass at each source node, and
    /// interleaved those values share a handful of cache lines instead of
    /// landing on `sources` different ones.
    pub fn speculate_interleaved<M: TransitionModel + Sync + ?Sized>(
        &mut self,
        held: &M,
        prev: &mut Vec<f64>,
        prev_il: &mut Vec<f64>,
    ) {
        self.speculate_auto(held, prev);
        interleave_rows(self.sources, self.nodes, prev, prev_il);
    }

    /// [`DistributionEnsemble::correct_columns`] reading the saved
    /// pre-advance rows in interleaved layout (as produced by
    /// [`DistributionEnsemble::speculate_interleaved`]).
    ///
    /// Bitwise the same result — interleaving changes where each value is
    /// read from, never which value is accumulated or in which order — but
    /// the gathers on the critical path become contiguous, which is the
    /// difference between the correction being latency-bound and
    /// bandwidth-bound at large `n`.
    ///
    /// # Panics
    ///
    /// As [`DistributionEnsemble::correct_columns`].
    pub fn correct_columns_interleaved<M: TransitionModel + ?Sized>(
        &mut self,
        realized: &M,
        columns: &[NodeId],
        prev_il: &[f64],
    ) {
        assert!(self.time > 0, "correct_columns needs a speculated round");
        assert_eq!(
            realized.node_count(),
            self.nodes,
            "transition model and ensemble disagree on the node count"
        );
        assert_eq!(prev_il.len(), self.data.len(), "prev has the wrong length");
        let base_round = self.time - 1;
        realized.propagate_round_columns_rows_interleaved(
            base_round,
            self.sources,
            prev_il,
            &mut self.data,
            columns,
        );
    }

    /// Dense fallback of the speculative advance: discards the speculated
    /// round, restores the rows saved by
    /// [`DistributionEnsemble::speculate_auto`] and re-takes the round under
    /// `realized` with the full kernel.  Used when the delta's affected
    /// fraction makes the sparse correction a bad trade.
    ///
    /// # Panics
    ///
    /// Panics if no round has been taken, `realized.node_count()` differs
    /// from the ensemble's, or `prev` has the wrong length.
    pub fn recompute_from<M: TransitionModel + Sync + ?Sized>(
        &mut self,
        realized: &M,
        prev: &[f64],
    ) {
        assert!(self.time > 0, "recompute_from needs a speculated round");
        assert_eq!(prev.len(), self.data.len(), "prev has the wrong length");
        self.data.copy_from_slice(prev);
        self.time -= 1;
        self.advance_auto(realized, 1);
    }

    /// One delta-incremental round in a single call: speculate under `held`,
    /// then repair `columns` under `realized`.  Equivalent to — and bitwise
    /// equal to — a dense one-round [`DistributionEnsemble::advance_auto`]
    /// under `realized` whenever `columns` covers the operators' differences
    /// (see [`DistributionEnsemble::correct_columns`]).
    ///
    /// # Panics
    ///
    /// As the two steps.
    pub fn advance_corrected<H, R>(
        &mut self,
        held: &H,
        realized: &R,
        columns: &[NodeId],
        prev: &mut Vec<f64>,
    ) where
        H: TransitionModel + Sync + ?Sized,
        R: TransitionModel + ?Sized,
    {
        self.speculate_auto(held, prev);
        self.correct_columns(realized, columns, prev);
    }

    /// Sequential blocked advance; `stats`, when given, has length
    /// `sources * rounds` laid out `[row * rounds + (t - 1)]`.
    fn advance_seq<M: TransitionModel + ?Sized>(
        &mut self,
        model: &M,
        rounds: usize,
        stats: Option<&mut [RowStats]>,
    ) {
        assert_eq!(
            model.node_count(),
            self.nodes,
            "transition model and ensemble disagree on the node count"
        );
        let base_round = self.time;
        self.time += rounds;
        if rounds == 0 {
            return;
        }
        let n = self.nodes;
        let mut scratch_a = vec![0.0; LANES.min(self.sources) * n];
        // The second scratch is only needed for multi-lane blocks; 1-row
        // ensembles (the PositionDistribution view) skip it entirely.
        let mut scratch_b = vec![
            0.0;
            if self.sources > 1 {
                LANES.min(self.sources) * n
            } else {
                0
            }
        ];
        match stats {
            Some(stats) => {
                for (rows, block_stats) in self
                    .data
                    .chunks_mut(LANES * n)
                    .zip(stats.chunks_mut(LANES * rounds))
                {
                    let lanes = rows.len() / n;
                    let b_len = if lanes == 1 { 0 } else { lanes * n };
                    advance_block(
                        model,
                        n,
                        base_round,
                        rounds,
                        rows,
                        &mut scratch_a[..lanes * n],
                        &mut scratch_b[..b_len],
                        Some(block_stats),
                    );
                }
            }
            None => {
                for rows in self.data.chunks_mut(LANES * n) {
                    let lanes = rows.len() / n;
                    let b_len = if lanes == 1 { 0 } else { lanes * n };
                    advance_block(
                        model,
                        n,
                        base_round,
                        rounds,
                        rows,
                        &mut scratch_a[..lanes * n],
                        &mut scratch_b[..b_len],
                        None,
                    );
                }
            }
        }
    }
}

/// Advances one block of `rows.len() / n` rows by `rounds` rounds through
/// the interleaved double-buffered kernel, starting from absolute round
/// `base_round` (the ensemble's clock before the advance; step `t` of the
/// block is executed as `propagate_round_*(base_round + t, …)`, which is
/// what lets time-varying models schedule a distinct operator per round).
/// `block_stats`, when given, has length `lanes * rounds` laid out
/// `[lane * rounds + (t - 1)]`.
#[allow(clippy::too_many_arguments)] // internal kernel plumbing: both drivers pass the same 8 pieces
fn advance_block<M: TransitionModel + ?Sized>(
    model: &M,
    n: usize,
    base_round: usize,
    rounds: usize,
    rows: &mut [f64],
    scratch_a: &mut [f64],
    scratch_b: &mut [f64],
    mut block_stats: Option<&mut [RowStats]>,
) {
    let lanes = rows.len() / n;
    debug_assert_eq!(scratch_a.len(), lanes * n);
    if lanes == 1 {
        // Single-row fast path: the row *is* the "interleaved" buffer, so
        // double-buffer against one scratch directly — no gather/scatter
        // copies, no second scratch.  This keeps `PositionDistribution`'s
        // per-step cost at the historical `propagate` level.
        let mut current: &mut [f64] = rows;
        let mut next: &mut [f64] = scratch_a;
        for t in 0..rounds {
            model.propagate_round_into(base_round + t, current, next);
            std::mem::swap(&mut current, &mut next);
            if let Some(stats) = block_stats.as_deref_mut() {
                stats[t] = stats_of(current.iter().copied());
            }
        }
        if !rounds.is_multiple_of(2) {
            // The result landed in the scratch buffer; move it home.
            next.copy_from_slice(current);
        }
        return;
    }
    debug_assert_eq!(scratch_b.len(), lanes * n);
    // Gather the block into the interleaved layout.
    for lane in 0..lanes {
        let row = &rows[lane * n..(lane + 1) * n];
        for (i, &x) in row.iter().enumerate() {
            scratch_a[i * lanes + lane] = x;
        }
    }
    let mut current: &mut [f64] = scratch_a;
    let mut next: &mut [f64] = scratch_b;
    for t in 0..rounds {
        model.propagate_round_interleaved(base_round + t, lanes, current, next);
        std::mem::swap(&mut current, &mut next);
        if let Some(stats) = block_stats.as_deref_mut() {
            for lane in 0..lanes {
                stats[lane * rounds + t] = stats_of((0..n).map(|i| current[i * lanes + lane]));
            }
        }
    }
    // Scatter the block back into row-major order.
    for lane in 0..lanes {
        let row = &mut rows[lane * n..(lane + 1) * n];
        for (i, x) in row.iter_mut().enumerate() {
            *x = current[i * lanes + lane];
        }
    }
}

/// Transposes `rows` row-major rows of length `n` from `src` into the
/// interleaved layout `dst[i * rows + r] = src[r * n + i]`.
///
/// This is the layout [`TransitionModel::propagate_round_columns_rows_interleaved`]
/// consumes: all rows' mass at one node packed contiguously, so the
/// per-column correction's gathers hit `⌈rows / 8⌉` cache lines per source
/// instead of `rows`.  The pass is tiled over nodes so the strided writes
/// stay within a cache-resident window; it is a pure copy — every
/// destination value is bitwise a source value.
///
/// `dst` is resized to `rows * n`.
///
/// # Panics
///
/// Panics if `src.len() != rows * n`.
pub fn interleave_rows(rows: usize, n: usize, src: &[f64], dst: &mut Vec<f64>) {
    assert_eq!(src.len(), rows * n, "source block has the wrong length");
    if dst.len() != rows * n {
        dst.clear();
        dst.resize(rows * n, 0.0);
    }
    // Tile width: 128 nodes * 8 bytes = 1 KiB of each row's window, and the
    // write side touches 128 packs at a time — both L1-resident.
    const TILE: usize = 128;
    let mut start = 0;
    while start < n {
        let end = (start + TILE).min(n);
        for (r, row) in src.chunks(n).enumerate() {
            for (i, &x) in row[start..end].iter().enumerate() {
                dst[(start + i) * rows + r] = x;
            }
        }
        start = end;
    }
}

/// Data-parallel block dispatch (enabled by the `parallel` feature).
///
/// As in the mixing engine, rayon is unavailable in this build environment,
/// so blocks are dealt round-robin to `std::thread::scope` workers.  Unlike
/// the RNG-driven engine, the kernel is deterministic arithmetic: each block
/// is computed exactly as in the sequential path, so parallel results are
/// **bitwise equal** to sequential ones for any thread count.
#[cfg(feature = "parallel")]
mod parallel {
    use super::{advance_block, DistributionEnsemble, EnsembleTrajectory, RowStats, LANES};
    use crate::transition::TransitionModel;

    /// One block of ensemble rows plus its optional stats window.
    type Block<'a> = (&'a mut [f64], Option<&'a mut [RowStats]>);

    impl DistributionEnsemble {
        /// Multi-threaded [`DistributionEnsemble::advance`]; bitwise
        /// identical results.
        ///
        /// # Panics
        ///
        /// Panics if `model.node_count()` differs from the ensemble's.
        pub fn advance_parallel<M: TransitionModel + Sync + ?Sized>(
            &mut self,
            model: &M,
            rounds: usize,
        ) {
            self.advance_par(model, rounds, None);
        }

        /// Multi-threaded [`DistributionEnsemble::advance_tracked`]; bitwise
        /// identical results.
        ///
        /// # Panics
        ///
        /// Panics if `model.node_count()` differs from the ensemble's.
        pub fn advance_tracked_parallel<M: TransitionModel + Sync + ?Sized>(
            &mut self,
            model: &M,
            rounds: usize,
        ) -> EnsembleTrajectory {
            let mut stats = vec![RowStats::default(); self.sources * rounds];
            self.advance_par(model, rounds, Some(&mut stats));
            EnsembleTrajectory {
                sources: self.sources,
                rounds,
                stats,
            }
        }

        fn advance_par<M: TransitionModel + Sync + ?Sized>(
            &mut self,
            model: &M,
            rounds: usize,
            stats: Option<&mut [RowStats]>,
        ) {
            assert_eq!(
                model.node_count(),
                self.nodes,
                "transition model and ensemble disagree on the node count"
            );
            let base_round = self.time;
            self.time += rounds;
            if rounds == 0 || self.sources == 0 {
                return;
            }
            let n = self.nodes;
            let blocks: Vec<Block<'_>> = match stats {
                Some(stats) => self
                    .data
                    .chunks_mut(LANES * n)
                    .zip(stats.chunks_mut(LANES * rounds).map(Some))
                    .collect(),
                None => self
                    .data
                    .chunks_mut(LANES * n)
                    .map(|rows| (rows, None))
                    .collect(),
            };
            let threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(blocks.len())
                .max(1);
            let mut per_thread: Vec<Vec<Block<'_>>> = (0..threads).map(|_| Vec::new()).collect();
            for (index, block) in blocks.into_iter().enumerate() {
                per_thread[index % threads].push(block);
            }
            std::thread::scope(|scope| {
                for assignment in per_thread {
                    scope.spawn(move || {
                        let mut scratch_a = vec![0.0; LANES * n];
                        let mut scratch_b = vec![0.0; LANES * n];
                        for (rows, block_stats) in assignment {
                            let lanes = rows.len() / n;
                            advance_block(
                                model,
                                n,
                                base_round,
                                rounds,
                                rows,
                                &mut scratch_a[..lanes * n],
                                &mut scratch_b[..lanes * n],
                                block_stats,
                            );
                        }
                    });
                }
            });
        }
    }
}

/// Rows per streaming batch: targets [`BATCH_TARGET_BYTES`] of buffer per
/// batch, rounded to whole [`LANES`] blocks.
fn batch_rows(n: usize) -> usize {
    let rows = BATCH_TARGET_BYTES / (std::mem::size_of::<f64>() * n.max(1));
    let rows = rows.clamp(LANES, 4096);
    (rows / LANES) * LANES
}

/// Evolves a point mass from **every** origin `0..n` for `rounds` rounds and
/// returns each origin's final accounting moments, streaming origins through
/// bounded-memory batches: a batch targets 64 MiB of rows but never shrinks
/// below one [`LANES`]-row block, so per-batch memory is tens of MB up to
/// `n ≈ 1M` and grows as `O(LANES · n)` beyond that (plus the same again in
/// kernel scratch).
///
/// This is the exact multi-origin route of the accountant: entry `o` is the
/// exact `(Σ_i P_i^o(t)², ρ*_o)` of user `o`'s report on an arbitrary graph,
/// where the spectral route can only bound the worst case.  Uses the
/// parallel block dispatch when the `parallel` feature is enabled (bitwise
/// identical results).
///
/// # Errors
///
/// [`GraphError::EmptyGraph`] if the model has no nodes.
pub fn all_origin_moments<M: TransitionModel + Sync + ?Sized>(
    model: &M,
    rounds: usize,
) -> Result<Vec<RowStats>> {
    let n = model.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let batch = batch_rows(n);
    let mut out = Vec::with_capacity(n);
    let mut start = 0usize;
    while start < n {
        let end = (start + batch).min(n);
        let origins: Vec<NodeId> = (start..end).collect();
        let mut ensemble = DistributionEnsemble::point_masses(n, &origins)?;
        ensemble.advance_auto(model, rounds);
        for row in 0..ensemble.sources() {
            out.push(ensemble.row_stats(row));
        }
        start = end;
    }
    Ok(out)
}

/// Like [`all_origin_moments`], but tracks the moments after **every** round
/// and hands each batch's [`EnsembleTrajectory`] (with the index of its
/// first origin) to `visit` — the one-pass engine behind incremental
/// ε-vs-rounds sweeps over all origins.
///
/// `visit` may fail; its error aborts the sweep and is returned (any error
/// type convertible from [`GraphError`] works, so callers can propagate
/// their own error enums directly).
///
/// # Errors
///
/// [`GraphError::EmptyGraph`] (converted into `E`) if the model has no
/// nodes, or the first error returned by `visit`.
pub fn all_origin_trajectories<M, E, F>(
    model: &M,
    rounds: usize,
    mut visit: F,
) -> std::result::Result<(), E>
where
    M: TransitionModel + Sync + ?Sized,
    E: From<GraphError>,
    F: FnMut(usize, &EnsembleTrajectory) -> std::result::Result<(), E>,
{
    let n = model.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph.into());
    }
    let batch = batch_rows(n);
    let mut start = 0usize;
    while start < n {
        let end = (start + batch).min(n);
        let origins: Vec<NodeId> = (start..end).collect();
        let mut ensemble = DistributionEnsemble::point_masses(n, &origins)?;
        let trajectory = ensemble.advance_tracked_auto(model, rounds);
        visit(start, &trajectory)?;
        start = end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::PositionDistribution;
    use crate::generators;
    use crate::rng::seeded_rng;
    use crate::transition::{BlackBoxModel, TransitionMatrix};
    use crate::Graph;

    fn irregular_graph(seed: u64) -> Graph {
        generators::barabasi_albert(150, 3, &mut seeded_rng(seed)).unwrap()
    }

    /// Reference: evolve each origin independently through the historical
    /// single-distribution route.
    fn naive_rows(t: &TransitionMatrix, origins: &[usize], rounds: usize) -> Vec<Vec<f64>> {
        origins
            .iter()
            .map(|&o| {
                let mut d = PositionDistribution::point_mass(t.node_count(), o).unwrap();
                d.advance(t, rounds);
                d.probabilities().to_vec()
            })
            .collect()
    }

    #[test]
    fn constructors_validate() {
        assert!(DistributionEnsemble::point_masses(0, &[]).is_err());
        assert!(DistributionEnsemble::point_masses(4, &[]).is_err());
        assert!(DistributionEnsemble::point_masses(4, &[4]).is_err());
        assert!(DistributionEnsemble::from_rows(0, vec![]).is_err());
        assert!(DistributionEnsemble::from_rows(2, vec![1.0, 0.0, 0.5]).is_err());
        assert!(DistributionEnsemble::from_rows(1, vec![0.5, 0.6]).is_err());
        assert!(DistributionEnsemble::from_rows(1, vec![-0.5, 1.5]).is_err());
        let ok = DistributionEnsemble::from_rows(2, vec![1.0, 0.0, 0.25, 0.75]).unwrap();
        assert_eq!(ok.sources(), 2);
        assert_eq!(ok.node_count(), 2);
        assert_eq!(ok.row(1), &[0.25, 0.75]);
    }

    #[test]
    fn ensemble_rows_match_single_distribution_evolution_bitwise() {
        let g = irregular_graph(1);
        let t = TransitionMatrix::with_laziness(&g, 0.2).unwrap();
        // 11 origins: one full block of 8 lanes plus a ragged tail of 3.
        let origins: Vec<usize> = (0..11).map(|i| i * 7 % 150).collect();
        let mut ensemble = DistributionEnsemble::point_masses(150, &origins).unwrap();
        ensemble.advance(&t, 13);
        assert_eq!(ensemble.time(), 13);
        let expected = naive_rows(&t, &origins, 13);
        for (row, exp) in expected.iter().enumerate() {
            assert_eq!(ensemble.row(row), exp.as_slice(), "row {row} diverged");
        }
    }

    #[test]
    fn tracked_stats_match_row_stats_after_each_round() {
        let g = irregular_graph(2);
        let t = TransitionMatrix::new(&g).unwrap();
        let origins = [0usize, 5, 9];
        let rounds = 6;
        let mut tracked = DistributionEnsemble::point_masses(150, &origins).unwrap();
        let trajectory = tracked.advance_tracked(&t, rounds);
        assert_eq!(trajectory.sources(), 3);
        assert_eq!(trajectory.rounds(), rounds);
        for t_round in 1..=rounds {
            let mut stepped = DistributionEnsemble::point_masses(150, &origins).unwrap();
            stepped.advance(&t, t_round);
            for row in 0..3 {
                assert_eq!(trajectory.after(row, t_round), stepped.row_stats(row));
            }
        }
        assert_eq!(trajectory.row(1).len(), rounds);
        assert_eq!(trajectory.row(2)[rounds - 1], trajectory.after(2, rounds));
    }

    #[test]
    fn black_box_model_agrees_with_the_matrix_backend() {
        let g = irregular_graph(3);
        let t = TransitionMatrix::new(&g).unwrap();
        let t_for_closure = t.clone();
        let black_box = BlackBoxModel::new(150, move |p: &[f64], out: &mut [f64]| {
            t_for_closure.propagate_into(p, out)
        })
        .unwrap();
        let origins: Vec<usize> = (0..10).collect();
        let mut via_matrix = DistributionEnsemble::point_masses(150, &origins).unwrap();
        via_matrix.advance(&t, 9);
        let mut via_black_box = DistributionEnsemble::point_masses(150, &origins).unwrap();
        via_black_box.advance(&black_box, 9);
        for row in 0..origins.len() {
            assert_eq!(via_matrix.row(row), via_black_box.row(row), "row {row}");
        }
    }

    #[test]
    fn rows_stay_probability_distributions() {
        let g = generators::stochastic_block_model(120, 4, 0.2, 0.02, &mut seeded_rng(4)).unwrap();
        let g = crate::connectivity::largest_connected_component(&g).0;
        let n = g.node_count();
        let t = TransitionMatrix::with_laziness(&g, 0.1).unwrap();
        let mut ensemble = DistributionEnsemble::all_origins(n).unwrap();
        ensemble.advance(&t, 25);
        for row in 0..n {
            let sum: f64 = ensemble.row(row).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {row} sums to {sum}");
            assert!(ensemble.row(row).iter().all(|&x| x >= 0.0));
        }
        let worst = ensemble.worst_stats();
        let best = (0..n).map(|r| ensemble.row_stats(r).sum_of_squares);
        assert!(worst.sum_of_squares >= best.fold(0.0, f64::max) - 1e-15);
    }

    #[test]
    fn all_origin_moments_match_materialized_ensemble() {
        let g = irregular_graph(5);
        let t = TransitionMatrix::new(&g).unwrap();
        let moments = all_origin_moments(&t, 8).unwrap();
        assert_eq!(moments.len(), 150);
        let mut full = DistributionEnsemble::all_origins(150).unwrap();
        full.advance(&t, 8);
        for (origin, stats) in moments.iter().enumerate() {
            assert_eq!(*stats, full.row_stats(origin), "origin {origin}");
        }
    }

    #[test]
    fn all_origin_trajectories_cover_every_origin_and_propagate_errors() {
        let g = irregular_graph(6);
        let t = TransitionMatrix::new(&g).unwrap();
        let mut seen = [false; 150];
        all_origin_trajectories(&t, 3, |first, trajectory| {
            for row in 0..trajectory.sources() {
                assert!(!seen[first + row]);
                seen[first + row] = true;
                assert!(trajectory.after(row, 3).sum_of_squares > 0.0);
            }
            Ok::<(), GraphError>(())
        })
        .unwrap();
        assert!(seen.iter().all(|&s| s));
        let err = all_origin_trajectories(&t, 1, |_, _| {
            Err(GraphError::InvalidParameters("stop".into()))
        });
        assert!(err.is_err());
    }

    #[test]
    fn stats_of_matches_the_historical_helpers() {
        let p = [0.0, 0.2, 0.5, 0.3, 0.0];
        let stats = stats_of(p.iter().copied());
        assert_eq!(stats.sum_of_squares, crate::degree::sum_of_squares(&p));
        let dist = PositionDistribution::from_probabilities(p.to_vec()).unwrap();
        assert_eq!(stats.support_ratio, dist.support_ratio().unwrap());
        // Degenerate all-zero input falls back to ratio 1.
        assert_eq!(stats_of([0.0, 0.0].into_iter()).support_ratio, 1.0);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_advance_is_bitwise_equal_to_sequential() {
        let g = irregular_graph(7);
        let t = TransitionMatrix::with_laziness(&g, 0.15).unwrap();
        let origins: Vec<usize> = (0..150).collect();
        let mut sequential = DistributionEnsemble::point_masses(150, &origins).unwrap();
        let seq_trajectory = sequential.advance_tracked(&t, 10);
        let mut parallel = DistributionEnsemble::point_masses(150, &origins).unwrap();
        let par_trajectory = parallel.advance_tracked_parallel(&t, 10);
        assert_eq!(sequential, parallel);
        assert_eq!(seq_trajectory, par_trajectory);
    }
}
