//! Batched, struct-of-arrays execution core for exchange rounds.
//!
//! Both the walk engine ([`crate::walk`]) and the full protocol simulation in
//! the core crate ultimately do the same thing: every round, each report held
//! at node `u` moves to a uniformly random neighbour of `u` (staying put with
//! probability `laziness`).  Historically the two layers each had their own
//! round loop — a flat per-walker sweep here, and a per-client object graph in
//! the core crate that allocated an `in_flight` vector of messages and routed
//! them one by one.  This module is the single shared core both drive.
//!
//! State is kept in flat arrays: `positions[w]` is the node holding walker
//! `w`, and an optional CSR bucket structure (`bucket_starts`/`bucket_walkers`)
//! groups walkers by holder for protocols that need per-holder iteration
//! order.  Rounds execute in one of two orders:
//!
//! * **walker order** ([`MixingEngine::step`]) — sweep `positions` once;
//!   the cheapest possible round, used by the walk engine;
//! * **holder order** ([`MixingEngine::step_holder`]) — iterate nodes in id
//!   order and each node's held walkers in insertion order (survivors of the
//!   previous round first, then arrivals in global send order).  This is
//!   draw-for-draw identical to the historical per-client simulation loop,
//!   which lets the core crate replace its object-graph round loop without
//!   changing a single sampled trajectory.  Deliveries are routed by a
//!   counting sort over destinations instead of per-message routing.
//!
//! Per-round statistics stream through [`RoundObserver`], so traffic metrics
//! are computed incrementally instead of post-hoc per client.  With the
//! `parallel` cargo feature, `MixingEngine::run_parallel` executes
//! walker-order rounds across threads in fixed-size chunks with per-chunk
//! deterministic RNG streams (results depend only on the seed, never on the
//! number of threads).
//!
//! Since the unified-kernel refactor, every round form is a thin plan
//! builder over [`crate::round`]: `step_holder` / `step_holder_masked`
//! build a [`RoundPlan`] and hand it to the shared decide/merge routines,
//! and `step` / `step_masked` use the shared walker-order sweep — the same
//! routines the sharded engine executes per shard, which is what makes
//! masked, dynamic (retarget) and sharded rounds compose instead of
//! multiplying loop copies.

use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};
use crate::round::{self, DrawMode, RoundArena, RoundPlan};
use crate::telemetry::EngineTelemetry;
use crate::walk::WalkConfig;
use rand::Rng;

pub(crate) use crate::round::sample_move;

/// Per-round measurements streamed to a [`RoundObserver`].
#[derive(Debug)]
pub struct RoundStats<'a> {
    /// 1-based index of the round that just finished.
    pub round: usize,
    /// Messages sent by each node this round (walkers that moved away).
    pub sent: &'a [u32],
    /// Walkers held by each node after the round.
    pub load: &'a [u32],
}

/// Streaming consumer of per-round statistics.
///
/// Implementations accumulate whatever they need (total traffic, peak load,
/// mixing diagnostics) while the engine runs, so no per-client post-hoc pass
/// over the population is required.
pub trait RoundObserver {
    /// Called once per executed round, after all moves of the round.
    fn on_round(&mut self, stats: &RoundStats<'_>);
}

/// The no-op observer: rounds are executed without collecting statistics.
impl RoundObserver for () {
    fn on_round(&mut self, _stats: &RoundStats<'_>) {}
}

impl<O: RoundObserver + ?Sized> RoundObserver for &mut O {
    fn on_round(&mut self, stats: &RoundStats<'_>) {
        (**self).on_round(stats);
    }
}

/// Shared, batched executor of exchange rounds over struct-of-arrays state.
///
/// Walker `w` is identified by its index in the position array; callers
/// attach meaning (e.g. "report produced by user `w`") externally.
#[derive(Debug, Clone)]
pub struct MixingEngine<'g> {
    graph: &'g Graph,
    /// `positions[w]` is the node currently holding walker `w`,
    /// u32-compressed (node ids fit by the graph's `n < 2^32` bound) so the
    /// position sweep moves half the bytes.
    positions: Vec<u32>,
    /// How rounds draw randomness (see [`DrawMode`]); `Compat` by default.
    draw_mode: DrawMode,
    /// Rounds executed so far.
    round: usize,
    /// CSR bucket structure: walkers held by node `u` are
    /// `bucket_walkers[bucket_starts[u]..bucket_starts[u + 1]]`, in insertion
    /// order.  Maintained by holder-order rounds; rebuilt (in walker-id
    /// order) on demand after walker-order rounds.
    bucket_starts: Vec<usize>,
    bucket_walkers: Vec<u32>,
    buckets_valid: bool,
    /// Per-round statistics, valid after an observed round.
    sent: Vec<u32>,
    load: Vec<u32>,
    /// Counting-sort scratch owned by the plan executor, reused across
    /// rounds (no steady-state allocation).  Also carries the decide
    /// phase's delivery buffers — the engine's single "outbox" — and the
    /// fast draw mode's RNG lane buffer.
    arena: RoundArena,
    /// Attached telemetry (`None` = the no-op path).  Inert by
    /// construction: recording never draws randomness or touches round
    /// state, so instrumented rounds are bitwise the bare rounds.
    telemetry: Option<EngineTelemetry>,
}

impl<'g> MixingEngine<'g> {
    /// Creates an engine with one walker per node, walker `i` starting at
    /// node `i` — the initial condition of network shuffling, where every
    /// user holds exactly her own randomized report.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] / [`GraphError::IsolatedNode`] for graphs
    /// the walk cannot run on.
    pub fn one_walker_per_node(graph: &'g Graph) -> Result<Self> {
        let starts: Vec<NodeId> = graph.nodes().collect();
        Self::with_starts(graph, starts)
    }

    /// Creates an engine with walkers at the given starting nodes.
    ///
    /// # Errors
    ///
    /// Same as [`MixingEngine::one_walker_per_node`], plus
    /// [`GraphError::NodeOutOfRange`] if a start is out of range and
    /// [`GraphError::InvalidParameters`] if the walker or node count exceeds
    /// the engine's `u32` id space.
    pub fn with_starts(graph: &'g Graph, starts: Vec<NodeId>) -> Result<Self> {
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        if let Some(&bad) = starts.iter().find(|&&s| s >= n) {
            return Err(GraphError::NodeOutOfRange {
                node: bad,
                node_count: n,
            });
        }
        if starts.len() > u32::MAX as usize || n > u32::MAX as usize {
            return Err(GraphError::InvalidParameters(format!(
                "mixing engine supports at most 2^32 - 1 walkers and nodes, got {} walkers on {n} nodes",
                starts.len()
            )));
        }
        let walkers = starts.len();
        Ok(MixingEngine {
            graph,
            positions: starts.iter().map(|&s| s as u32).collect(),
            draw_mode: DrawMode::Compat,
            round: 0,
            bucket_starts: vec![0; n + 1],
            bucket_walkers: Vec::with_capacity(walkers),
            buckets_valid: false,
            sent: vec![0; n],
            load: vec![0; n],
            arena: RoundArena::new(),
            telemetry: None,
        })
    }

    /// Attaches (or with `None` detaches) the phase-timing telemetry
    /// bundle.  Registration happened when the bundle was built; from
    /// here on every recording is a preregistered atomic slot write, so
    /// steady-state rounds stay allocation-free and — because telemetry
    /// never draws randomness or touches state — bitwise identical to
    /// uninstrumented rounds.
    pub fn set_telemetry(&mut self, telemetry: Option<EngineTelemetry>) {
        self.telemetry = telemetry;
    }

    /// The engine's current draw mode.
    pub fn draw_mode(&self) -> DrawMode {
        self.draw_mode
    }

    /// Selects how subsequent rounds draw randomness.  Switching modes
    /// changes the realization of the walk (fast rounds consume one `u64`
    /// per walker, compat rounds the historical draw sequence) but not its
    /// distribution.
    pub fn set_draw_mode(&mut self, mode: DrawMode) {
        self.draw_mode = mode;
    }

    /// The graph the walkers move on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Swaps in a new topology for subsequent rounds — the per-round
    /// topology hook of the churn runtime.  Walker positions, buckets and
    /// the round counter carry over unchanged; only where walkers can move
    /// *next* changes.  The new graph must have the same node count (users
    /// are stable; churn removes availability, not identity) and no
    /// isolated nodes.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] on a node-count mismatch,
    /// [`GraphError::IsolatedNode`] if the new topology has one.
    pub fn retarget(&mut self, graph: &'g Graph) -> Result<()> {
        if graph.node_count() != self.graph.node_count() {
            return Err(GraphError::InvalidParameters(format!(
                "cannot retarget an engine on {} nodes to a graph with {}",
                self.graph.node_count(),
                graph.node_count()
            )));
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        self.graph = graph;
        Ok(())
    }

    /// Number of walkers being tracked.
    pub fn walker_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Current position of walker `w`.
    pub fn position(&self, walker: usize) -> NodeId {
        self.positions[walker] as NodeId
    }

    /// Current positions of all walkers (`positions[w] = holder of w`),
    /// u32-compressed; widen with `as usize` where a [`NodeId`] is needed.
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Histogram of walkers per node: entry `L_i` of Lemma 5.1.
    pub fn load_vector(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.graph.node_count()];
        for &node in &self.positions {
            load[node as usize] += 1;
        }
        load
    }

    /// Groups walkers by their current holder: `holders[u]` lists the walker
    /// ids currently at node `u` — the multiset `{s_j}ᵢ` of reports held by
    /// each user at the end of the exchange phase (Figure 2).
    ///
    /// Ordering within a node follows the engine's bucket order when rounds
    /// ran in holder order (survivors first, then arrivals in send order),
    /// and walker-id order otherwise.
    pub fn walkers_by_holder(&self) -> Vec<Vec<usize>> {
        let mut holders = vec![Vec::new(); self.graph.node_count()];
        if self.buckets_valid {
            for u in self.graph.nodes() {
                holders[u] = self.held_by(u).iter().map(|&w| w as usize).collect();
            }
        } else {
            for (walker, &node) in self.positions.iter().enumerate() {
                holders[node as usize].push(walker);
            }
        }
        holders
    }

    /// The walkers currently held by node `u`, in bucket order.
    ///
    /// Requires the bucket structure to be valid; call
    /// [`MixingEngine::ensure_buckets`] first if rounds ran in walker order.
    ///
    /// # Panics
    ///
    /// Panics if the buckets are stale.
    pub fn held_by(&self, u: NodeId) -> &[u32] {
        assert!(
            self.buckets_valid,
            "holder buckets are stale; call ensure_buckets()"
        );
        &self.bucket_walkers[self.bucket_starts[u]..self.bucket_starts[u + 1]]
    }

    /// (Re)builds the holder buckets from the position array, grouping
    /// walkers by node in walker-id order — the kernel's counting-sort
    /// merge with no survivors and the position array as the arrival
    /// stream.
    pub fn ensure_buckets(&mut self) {
        if self.buckets_valid {
            return;
        }
        let n = self.graph.node_count();
        let MixingEngine {
            positions,
            bucket_starts,
            bucket_walkers,
            load,
            arena,
            ..
        } = self;
        arena.kept_nodes.clear();
        arena.kept_walkers.clear();
        round::merge_round_buckets(n, arena, load, bucket_starts, bucket_walkers, |sink| {
            for (walker, &node) in positions.iter().enumerate() {
                sink(node as usize, walker as u32);
            }
        });
        self.buckets_valid = true;
    }

    /// Executes one walker-order round: sweep the position array once, moving
    /// every walker to a uniformly random neighbour of its current node
    /// (staying put with probability `laziness`).
    ///
    /// This is the fastest round form; it does not maintain holder buckets or
    /// per-round statistics.
    pub fn step<R: Rng + ?Sized>(&mut self, laziness: f64, rng: &mut R) {
        self.step_inner(laziness, None, rng);
    }

    /// Executes one walker-order round under an availability mask: a walker
    /// whose chosen recipient is unavailable stays put for the round (the
    /// send never happens).  With an all-available mask this consumes the
    /// RNG and moves walkers exactly like [`MixingEngine::step`].
    ///
    /// # Panics
    ///
    /// Panics if `available.len()` differs from the node count.
    pub fn step_masked<R: Rng + ?Sized>(&mut self, laziness: f64, available: &[bool], rng: &mut R) {
        assert_eq!(
            available.len(),
            self.graph.node_count(),
            "availability mask has the wrong length"
        );
        self.step_inner(laziness, Some(available), rng);
    }

    fn step_inner<R: Rng + ?Sized>(
        &mut self,
        laziness: f64,
        available: Option<&[bool]>,
        rng: &mut R,
    ) {
        let plan = RoundPlan {
            graph: self.graph,
            laziness,
            available,
        };
        {
            // Walker-order rounds fuse decide and position update into
            // one sweep; the whole sweep is the decide phase.
            let _span = self.telemetry.as_ref().map(|t| t.decide_ns.span(&t.clock));
            match self.draw_mode {
                DrawMode::Compat => round::sweep_walker_order(&plan, &mut self.positions, rng),
                DrawMode::Fast => round::sweep_walker_order_fast(
                    &plan,
                    &mut self.positions,
                    &mut self.arena.lane,
                    rng,
                ),
            }
        }
        self.round += 1;
        self.buckets_valid = false;
        if let Some(t) = &self.telemetry {
            t.rounds.inc();
        }
    }

    /// Executes one walker-order round and streams statistics to `observer`.
    ///
    /// Always draws through the compat rule regardless of the engine's
    /// [`DrawMode`] — this is a diagnostic path, not a hot loop.
    pub fn step_observed<R: Rng + ?Sized, O: RoundObserver>(
        &mut self,
        laziness: f64,
        rng: &mut R,
        observer: &mut O,
    ) {
        self.sent.fill(0);
        for pos in &mut self.positions {
            if let Some(dest) = sample_move(self.graph, *pos as NodeId, laziness, rng) {
                self.sent[*pos as usize] += 1;
                *pos = dest as u32;
            }
        }
        self.load.fill(0);
        for &node in &self.positions {
            self.load[node as usize] += 1;
        }
        self.round += 1;
        self.buckets_valid = false;
        observer.on_round(&RoundStats {
            round: self.round,
            sent: &self.sent,
            load: &self.load,
        });
    }

    /// Executes one holder-order round: nodes are visited in id order, each
    /// node's held walkers in insertion order; every walker either stays
    /// (probability `laziness`) or is sent to a uniformly random neighbour.
    /// Deliveries are routed with a counting sort over destinations, so a
    /// node's bucket for the next round lists its survivors first, then its
    /// arrivals in global send order — exactly the order in which a
    /// message-passing simulation would have appended them.
    ///
    /// Statistics for the finished round stream to `observer` (pass
    /// `&mut ()` to skip).
    pub fn step_holder<R: Rng + ?Sized, O: RoundObserver>(
        &mut self,
        laziness: f64,
        rng: &mut R,
        observer: &mut O,
    ) {
        self.step_holder_inner(laziness, None, rng, observer);
    }

    /// [`MixingEngine::step_holder`] under an availability mask: a walker
    /// whose chosen recipient is unavailable stays put (it counts as a
    /// survivor, not a sent message — the delivery never happened).  With an
    /// all-available mask the round is bit-for-bit [`MixingEngine::step_holder`],
    /// RNG stream, bucket order and statistics included.
    ///
    /// # Panics
    ///
    /// Panics if `available.len()` differs from the node count.
    pub fn step_holder_masked<R: Rng + ?Sized, O: RoundObserver>(
        &mut self,
        laziness: f64,
        available: &[bool],
        rng: &mut R,
        observer: &mut O,
    ) {
        assert_eq!(
            available.len(),
            self.graph.node_count(),
            "availability mask has the wrong length"
        );
        self.step_holder_inner(laziness, Some(available), rng, observer);
    }

    fn step_holder_inner<R: Rng + ?Sized, O: RoundObserver>(
        &mut self,
        laziness: f64,
        available: Option<&[bool]>,
        rng: &mut R,
        observer: &mut O,
    ) {
        self.ensure_buckets();
        let n = self.graph.node_count();
        let draw_mode = self.draw_mode;
        let MixingEngine {
            graph,
            positions,
            bucket_starts,
            bucket_walkers,
            sent,
            load,
            arena,
            telemetry,
            ..
        } = self;
        let telemetry = telemetry.as_ref();
        let plan = RoundPlan {
            graph,
            laziness,
            available,
        };
        // Decide: survivors into the arena, deliveries into its delivery
        // buffers in send order.
        {
            let _span = telemetry.map(|t| t.decide_ns.span(&t.clock));
            let holders = (0..n).map(|u| (u, u));
            let buckets = round::HolderBuckets {
                starts: bucket_starts,
                walkers: bucket_walkers,
            };
            match draw_mode {
                DrawMode::Compat => {
                    round::decide_holder_moves(&plan, holders, buckets, sent, arena, rng)
                }
                DrawMode::Fast => {
                    round::decide_holder_moves_fast(&plan, holders, buckets, sent, arena, rng)
                }
            }
        }
        // Replay the deliveries into the position array (each delivered
        // walker appears exactly once), prefetching the randomly-indexed
        // position slots a few entries ahead.
        {
            let _span = telemetry.map(|t| t.exchange_ns.span(&t.clock));
            let (dests, walkers) = arena.deliveries();
            for (i, (&d, &w)) in dests.iter().zip(walkers).enumerate() {
                if let Some(&wf) = walkers.get(i + 8) {
                    round::prefetch_read(positions, wf as usize);
                }
                positions[w as usize] = d;
            }
        }
        // Merge: survivors first, then arrivals in global send order.  The
        // delivery buffers are taken out of the arena for the duration of
        // the merge (a move, not an allocation) because the merge borrows
        // the arena's counting-sort scratch mutably.
        {
            let _span = telemetry.map(|t| t.merge_ns.span(&t.clock));
            let deliver_dests = std::mem::take(&mut arena.deliver_dests);
            let deliver_walkers = std::mem::take(&mut arena.deliver_walkers);
            round::merge_round_buckets(n, arena, load, bucket_starts, bucket_walkers, |sink| {
                for (&d, &w) in deliver_dests.iter().zip(deliver_walkers.iter()) {
                    sink(d as usize, w);
                }
            });
            arena.deliver_dests = deliver_dests;
            arena.deliver_walkers = deliver_walkers;
        }
        if let Some(t) = telemetry {
            // `bounced` is 0 on unmasked rounds by the arena contract.
            t.mask_bounces.add(arena.bounced());
            t.rounds.inc();
        }
        debug_assert_eq!(
            self.bucket_starts[n],
            self.positions.len(),
            "round conservation violated: survivors + arrivals + bounces must equal the walkers"
        );
        self.round += 1;
        observer.on_round(&RoundStats {
            round: self.round,
            sent: &self.sent,
            load: &self.load,
        });
    }

    /// Runs a full walk in walker order.
    ///
    /// # Errors
    ///
    /// Propagates [`WalkConfig::validate`] errors.
    pub fn run<R: Rng + ?Sized>(&mut self, config: WalkConfig, rng: &mut R) -> Result<()> {
        config.validate()?;
        for _ in 0..config.rounds {
            self.step(config.laziness, rng);
        }
        Ok(())
    }

    /// Runs a full walk in holder order, streaming statistics to `observer`.
    ///
    /// # Errors
    ///
    /// Propagates [`WalkConfig::validate`] errors.
    pub fn run_holder_observed<R: Rng + ?Sized, O: RoundObserver>(
        &mut self,
        config: WalkConfig,
        rng: &mut R,
        observer: &mut O,
    ) -> Result<()> {
        config.validate()?;
        for _ in 0..config.rounds {
            self.step_holder(config.laziness, rng, observer);
        }
        Ok(())
    }
}

/// Data-parallel walker-order rounds (enabled by the `parallel` feature).
///
/// Rayon is not available in this build environment, so parallelism is
/// implemented directly on `std::thread::scope`: the position array is split
/// into fixed-size chunks, each chunk is stepped with its own ChaCha8 stream
/// derived from `(seed, round, chunk index)`, and chunks are dealt to threads
/// round-robin.  Because the chunk size and the per-chunk streams are fixed,
/// the result depends only on the seed — never on how many threads ran.
#[cfg(feature = "parallel")]
mod parallel {
    use super::MixingEngine;
    use crate::rng::SimRng;
    use crate::round::{self, DrawMode, RoundPlan};
    use crate::walk::WalkConfig;
    use rand::SeedableRng;

    /// Walkers per deterministic RNG chunk.
    pub const CHUNK_WALKERS: usize = 1 << 16;

    use crate::rng::mix64;

    fn chunk_rng(seed: u64, round: usize, chunk: usize) -> SimRng {
        SimRng::seed_from_u64(mix64(mix64(seed ^ round as u64) ^ chunk as u64))
    }

    impl MixingEngine<'_> {
        /// Executes one walker-order round in parallel.
        ///
        /// Deterministic in `seed` and the current round index; independent
        /// of thread count.  The sampled trajectories differ from the serial
        /// [`MixingEngine::step`] for the same seed (each chunk draws from
        /// its own stream), but are equally distributed.
        pub fn step_parallel(&mut self, laziness: f64, seed: u64) {
            self.run_parallel_rounds(laziness, seed, 1);
        }

        /// Runs a full walk with parallel rounds.
        ///
        /// Workers are spawned once for the whole walk, not once per round:
        /// walkers never interact within walker-order rounds, so each thread
        /// advances its chunks through all rounds independently — same
        /// result as round-by-round execution, without per-round thread
        /// churn.
        ///
        /// # Errors
        ///
        /// Propagates [`WalkConfig::validate`] errors.
        pub fn run_parallel(&mut self, config: WalkConfig, seed: u64) -> crate::error::Result<()> {
            config.validate()?;
            self.run_parallel_rounds(config.laziness, seed, config.rounds);
            Ok(())
        }

        fn run_parallel_rounds(&mut self, laziness: f64, seed: u64, rounds: usize) {
            if rounds == 0 {
                return;
            }
            let base_round = self.round;
            let graph = self.graph;
            let draw_mode = self.draw_mode;
            let plan = RoundPlan::new(graph, laziness);
            let threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            let chunks: Vec<(usize, &mut [u32])> = self
                .positions
                .chunks_mut(CHUNK_WALKERS)
                .enumerate()
                .collect();
            let threads = threads.min(chunks.len()).max(1);
            let mut per_thread: Vec<Vec<(usize, &mut [u32])>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (index, chunk) in chunks {
                per_thread[index % threads].push((index, chunk));
            }
            std::thread::scope(|scope| {
                for assignment in per_thread {
                    let plan = &plan;
                    scope.spawn(move || {
                        let mut lane = Vec::new();
                        for (chunk_index, chunk) in assignment {
                            for round in base_round..base_round + rounds {
                                let mut rng = chunk_rng(seed, round, chunk_index);
                                match draw_mode {
                                    DrawMode::Compat => {
                                        round::sweep_walker_order(plan, chunk, &mut rng)
                                    }
                                    DrawMode::Fast => round::sweep_walker_order_fast(
                                        plan, chunk, &mut lane, &mut rng,
                                    ),
                                }
                            }
                        }
                    });
                }
            });
            self.round += rounds;
            self.buckets_valid = false;
        }
    }
}

#[cfg(feature = "parallel")]
pub use parallel::CHUNK_WALKERS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::seeded_rng;

    /// The historical per-walker loop, kept verbatim as a reference.
    fn naive_step<R: Rng + ?Sized>(
        graph: &Graph,
        positions: &mut [NodeId],
        laziness: f64,
        rng: &mut R,
    ) {
        for pos in positions.iter_mut() {
            if laziness > 0.0 && rng.gen::<f64>() < laziness {
                continue;
            }
            let nbrs = graph.neighbors(*pos);
            *pos = nbrs[rng.gen_range(0..nbrs.len())] as usize;
        }
    }

    #[test]
    fn walker_order_matches_naive_loop_exactly() {
        let g = generators::random_regular(200, 6, &mut seeded_rng(1)).unwrap();
        for laziness in [0.0, 0.35] {
            let mut engine = MixingEngine::one_walker_per_node(&g).unwrap();
            let mut engine_rng = seeded_rng(99);
            let mut naive: Vec<NodeId> = g.nodes().collect();
            let mut naive_rng = seeded_rng(99);
            for _ in 0..25 {
                engine.step(laziness, &mut engine_rng);
                naive_step(&g, &mut naive, laziness, &mut naive_rng);
            }
            let widened: Vec<NodeId> = engine.positions().iter().map(|&p| p as NodeId).collect();
            assert_eq!(widened, naive);
        }
    }

    #[test]
    fn fast_mode_is_statistically_sane_and_deterministic() {
        // Fast rounds must be seed-deterministic, stay on the graph, and
        // differ from compat rounds only in realization.
        let g = generators::random_regular(300, 6, &mut seeded_rng(21)).unwrap();
        let run = |mode: crate::round::DrawMode, seed: u64| {
            let mut engine = MixingEngine::one_walker_per_node(&g).unwrap();
            engine.set_draw_mode(mode);
            let mut rng = seeded_rng(seed);
            for round in 0..12 {
                if round % 2 == 0 {
                    engine.step(0.2, &mut rng);
                } else {
                    engine.step_holder(0.2, &mut rng, &mut ());
                }
            }
            engine.positions().to_vec()
        };
        let fast_a = run(crate::round::DrawMode::Fast, 5);
        let fast_b = run(crate::round::DrawMode::Fast, 5);
        assert_eq!(fast_a, fast_b, "fast mode must be seed-deterministic");
        assert_ne!(
            fast_a,
            run(crate::round::DrawMode::Fast, 6),
            "fast mode must depend on the seed"
        );
        assert!(fast_a.iter().all(|&p| (p as usize) < 300));
    }

    #[test]
    fn fast_holder_rounds_conserve_walkers_and_track_positions() {
        let g = generators::random_regular(150, 4, &mut seeded_rng(22)).unwrap();
        let mask: Vec<bool> = (0..150).map(|u| u % 5 != 0).collect();
        let mut engine = MixingEngine::one_walker_per_node(&g).unwrap();
        engine.set_draw_mode(crate::round::DrawMode::Fast);
        let mut rng = seeded_rng(23);
        for round in 0..20 {
            if round % 2 == 0 {
                engine.step_holder(0.2, &mut rng, &mut ());
            } else {
                engine.step_holder_masked(0.2, &mask, &mut rng, &mut ());
            }
        }
        let load = engine.load_vector();
        assert_eq!(load.iter().sum::<usize>(), 150);
        for u in g.nodes() {
            assert_eq!(engine.held_by(u).len(), load[u]);
            for &w in engine.held_by(u) {
                assert_eq!(engine.position(w as usize), u);
            }
        }
    }

    #[test]
    fn holder_order_conserves_walkers_and_tracks_positions() {
        let g = generators::random_regular(120, 4, &mut seeded_rng(2)).unwrap();
        let mut engine = MixingEngine::one_walker_per_node(&g).unwrap();
        let mut rng = seeded_rng(5);
        for _ in 0..30 {
            engine.step_holder(0.2, &mut rng, &mut ());
        }
        assert_eq!(engine.round(), 30);
        // Buckets and positions agree.
        let load = engine.load_vector();
        assert_eq!(load.iter().sum::<usize>(), 120);
        for u in g.nodes() {
            assert_eq!(engine.held_by(u).len(), load[u]);
            for &w in engine.held_by(u) {
                assert_eq!(engine.position(w as usize), u);
            }
        }
    }

    #[test]
    fn holder_order_buckets_keep_survivors_before_arrivals() {
        // With laziness ~1 nothing moves, so buckets must be stable across
        // rounds (survivors keep their relative order).
        let g = generators::complete(10).unwrap();
        let mut engine = MixingEngine::one_walker_per_node(&g).unwrap();
        let mut rng = seeded_rng(3);
        engine.ensure_buckets();
        let before = engine.walkers_by_holder();
        engine.step_holder(0.999_999, &mut rng, &mut ());
        assert_eq!(engine.walkers_by_holder(), before);
    }

    #[test]
    fn observer_sees_conserved_load_and_sent_counts() {
        struct Checker {
            walkers: usize,
            rounds_seen: usize,
        }
        impl RoundObserver for Checker {
            fn on_round(&mut self, stats: &RoundStats<'_>) {
                self.rounds_seen += 1;
                assert_eq!(stats.round, self.rounds_seen);
                let total: u64 = stats.load.iter().map(|&l| l as u64).sum();
                assert_eq!(total as usize, self.walkers);
                let sent: u64 = stats.sent.iter().map(|&s| s as u64).sum();
                assert!(sent as usize <= self.walkers);
            }
        }
        let g = generators::random_regular(80, 4, &mut seeded_rng(4)).unwrap();
        let mut engine = MixingEngine::one_walker_per_node(&g).unwrap();
        let mut rng = seeded_rng(6);
        let mut checker = Checker {
            walkers: 80,
            rounds_seen: 0,
        };
        engine
            .run_holder_observed(WalkConfig::lazy(12, 0.1), &mut rng, &mut checker)
            .unwrap();
        assert_eq!(checker.rounds_seen, 12);

        let mut walker_checker = Checker {
            walkers: 80,
            rounds_seen: 0,
        };
        let mut engine2 = MixingEngine::one_walker_per_node(&g).unwrap();
        engine2.step_observed(0.0, &mut rng, &mut walker_checker);
        assert_eq!(walker_checker.rounds_seen, 1);
    }

    #[test]
    fn masked_rounds_with_everyone_available_are_bitwise_static() {
        let g = generators::random_regular(150, 6, &mut seeded_rng(9)).unwrap();
        let mask = vec![true; 150];
        for laziness in [0.0, 0.25] {
            let mut plain = MixingEngine::one_walker_per_node(&g).unwrap();
            let mut masked = MixingEngine::one_walker_per_node(&g).unwrap();
            let mut rng_a = seeded_rng(77);
            let mut rng_b = seeded_rng(77);
            for round in 0..20 {
                if round % 2 == 0 {
                    plain.step(laziness, &mut rng_a);
                    masked.step_masked(laziness, &mask, &mut rng_b);
                } else {
                    plain.step_holder(laziness, &mut rng_a, &mut ());
                    masked.step_holder_masked(laziness, &mask, &mut rng_b, &mut ());
                }
            }
            assert_eq!(plain.positions(), masked.positions());
            assert_eq!(plain.walkers_by_holder(), masked.walkers_by_holder());
        }
    }

    #[test]
    fn unavailable_recipients_keep_reports_in_place() {
        let g = generators::random_regular(100, 4, &mut seeded_rng(10)).unwrap();
        // Blackout: only node 0..10 available; walkers can never land on an
        // unavailable node, and walkers already there can only leave toward
        // available nodes (or stay).
        let mut mask = vec![false; 100];
        for slot in mask.iter_mut().take(10) {
            *slot = true;
        }
        let mut engine = MixingEngine::one_walker_per_node(&g).unwrap();
        let before = engine.positions().to_vec();
        let mut rng = seeded_rng(11);
        engine.step_masked(0.0, &mask, &mut rng);
        for (walker, (&now, &was)) in engine.positions().iter().zip(&before).enumerate() {
            assert!(
                mask[now as usize] || now == was,
                "walker {walker} was delivered to unavailable node {now}"
            );
        }
        // The totally-dark network freezes everyone.
        let dark = vec![false; 100];
        let frozen = engine.positions().to_vec();
        engine.step_holder_masked(0.3, &dark, &mut rng, &mut ());
        assert_eq!(engine.positions(), frozen.as_slice());
        // The failed sends were not counted as traffic.
        struct NoTraffic;
        impl RoundObserver for NoTraffic {
            fn on_round(&mut self, stats: &RoundStats<'_>) {
                assert_eq!(stats.sent.iter().sum::<u32>(), 0);
            }
        }
        engine.step_holder_masked(0.3, &dark, &mut rng, &mut NoTraffic);
    }

    #[test]
    fn retarget_switches_topology_between_rounds() {
        let ring = generators::cycle(12).unwrap();
        let full = generators::complete(12).unwrap();
        let mut engine = MixingEngine::one_walker_per_node(&ring).unwrap();
        let mut rng = seeded_rng(12);
        engine.step(0.0, &mut rng);
        // On the ring every walker is adjacent to its origin.
        for (walker, &pos) in engine.positions().iter().enumerate() {
            assert!(ring.neighbors(walker).contains(&pos));
        }
        engine.retarget(&full).unwrap();
        assert_eq!(engine.round(), 1);
        engine.step(0.0, &mut rng);
        assert_eq!(engine.round(), 2);
        assert!(engine.positions().iter().all(|&p| p < 12));
        // Mismatched node counts and isolated nodes are rejected.
        let small = generators::cycle(5).unwrap();
        assert!(engine.retarget(&small).is_err());
        let isolated = Graph::from_edges(12, &[(0, 1)]).unwrap();
        assert!(engine.retarget(&isolated).is_err());
    }

    #[test]
    fn construction_validates_inputs() {
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(MixingEngine::one_walker_per_node(&empty).is_err());
        let isolated = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(MixingEngine::one_walker_per_node(&isolated).is_err());
        let g = generators::cycle(4).unwrap();
        assert!(MixingEngine::with_starts(&g, vec![0, 9]).is_err());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_rounds_are_deterministic_and_conserve_walkers() {
        let g = generators::random_regular(5_000, 8, &mut seeded_rng(7)).unwrap();
        let run = |seed: u64| {
            let mut engine = MixingEngine::one_walker_per_node(&g).unwrap();
            engine
                .run_parallel(WalkConfig::lazy(10, 0.2), seed)
                .unwrap();
            engine.positions().to_vec()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&p| p < 5_000));
    }
}
