//! Figure 4 — privacy vs. communication rounds (stationary bound).
//!
//! For the three similarly-sized social graphs (Facebook, Twitch, Deezer)
//! the central ε of `A_all` is evaluated with the worst-case spectral bound
//! of Eq. 7 as the number of exchange rounds grows, showing convergence to
//! the asymptotic (stationary) value around `t ≈ α⁻¹ log n`.
//!
//! ```text
//! cargo run --release -p ns-bench --bin fig4
//! ```

use network_shuffle::prelude::*;
use ns_bench::{dataset_accountants, fmt, print_table, write_csv, DELTA};
use ns_datasets::Dataset;

fn main() {
    let epsilon_0 = 2.0;
    let datasets = [Dataset::Facebook, Dataset::Twitch, Dataset::Deezer];

    // Sweep points: log-spaced rounds up to ~2x the largest mixing time.
    let sweeps = dataset_accountants(datasets);
    let max_mixing = sweeps
        .iter()
        .map(|da| da.accountant.mixing_time())
        .max()
        .unwrap_or(0);
    let max_rounds = (2 * max_mixing).max(10);
    let checkpoints: Vec<usize> = {
        let mut t = 1usize;
        let mut out = Vec::new();
        while t <= max_rounds {
            out.push(t);
            t = ((t as f64) * 1.6).ceil() as usize;
        }
        out.push(max_rounds);
        out.dedup();
        out
    };

    let headers: Vec<&str> = vec!["rounds t", "Facebook eps", "Twitch eps", "Deezer eps"];
    let mut rows = Vec::new();
    let mut columns: Vec<Vec<(usize, f64)>> = Vec::new();
    for da in &sweeps {
        let accountant = &da.accountant;
        let params = AccountantParams::new(accountant.node_count(), epsilon_0, DELTA, DELTA)
            .expect("valid params");
        let sweep = accountant
            .epsilon_vs_rounds(ProtocolKind::All, Scenario::Stationary, &params, max_rounds)
            .expect("sweep");
        println!(
            "{}: n = {}, spectral gap = {:.4}, mixing time = {}",
            da.name(),
            accountant.node_count(),
            accountant.mixing_profile().spectral_gap,
            accountant.mixing_time()
        );
        columns.push(sweep);
    }

    for &t in &checkpoints {
        let mut row = vec![t.to_string()];
        for column in &columns {
            row.push(fmt(column[t - 1].1));
        }
        rows.push(row);
    }

    print_table(
        "Figure 4: central epsilon (A_all, stationary bound) vs. communication rounds, eps0 = 2",
        &headers,
        &rows,
    );
    write_csv("fig4", &headers, &rows);
    println!(
        "\nshape check: epsilon decreases monotonically with t and flattens near the mixing time\n\
         alpha^-1 log n of each graph, matching Figure 4."
    );
}
