//! Service-layer telemetry: accountant phase timers, admission audit and
//! traffic adapters over the `ns-obs` registry.
//!
//! Everything here follows the same contract as
//! [`ns_graph::telemetry::EngineTelemetry`]: handles are preregistered
//! slots, recording is relaxed atomic writes (plus, for the audit sink, a
//! short uncontended mutex hold off the round hot path), and an attached
//! bundle never draws randomness or branches on recorded values — an
//! instrumented coordinator run is bitwise identical to a bare one
//! (`tests/observability.rs`).
//!
//! The pre-existing observation types stay what they were:
//! [`crate::metrics::TrafficRecorder`] still builds
//! [`crate::metrics::TrafficMetrics`], and
//! [`ns_graph::ensemble::RowStats`] still carries the accounting moments.
//! The registry integration is adapters *around* them —
//! [`ObservedRounds`] forwards every round to the wrapped observer and
//! folds the same sent/load vectors into counters;
//! [`AccountantTelemetry::record_worst_stats`] publishes a `RowStats` as
//! gauges — so no behavior changes with telemetry detached.

use crate::accountant::closed_form::AccountantParams;
use ns_graph::mixing_engine::{RoundObserver, RoundStats};
use ns_graph::telemetry::EngineTelemetry;
use ns_obs::{Clock, Counter, Gauge, Histogram, MetricsRegistry, TraceEvent, TraceWriter};
use std::io;
use std::sync::{Arc, Mutex};

/// Metric names the service layer registers (the README's catalogue).
pub mod names {
    /// Dense accountant advance per round ([`advance_round`]), ns.
    ///
    /// [`advance_round`]: crate::service::StreamingAccountant::advance_round
    pub const ACCT_ADVANCE_NS: &str = "ns_acct_advance_ns";
    /// Speculative (off-critical-path) advance per round, ns.
    pub const ACCT_SPECULATE_NS: &str = "ns_acct_speculate_ns";
    /// Delta-commit critical path per round (correct or recompute), ns.
    pub const ACCT_COMMIT_NS: &str = "ns_acct_commit_ns";
    /// Rounds speculated ahead of their commit.
    pub const ACCT_SPECULATED_TOTAL: &str = "ns_acct_speculated_total";
    /// Delta commits repaired by the sparse column correction.
    pub const ACCT_COMMITS_SPARSE_TOTAL: &str = "ns_acct_commits_sparse_total";
    /// Delta commits that fell back to a dense recompute.
    pub const ACCT_COMMITS_DENSE_TOTAL: &str = "ns_acct_commits_dense_total";
    /// Affected-column fraction per delta commit, in permille of `n`.
    pub const ACCT_AFFECTED_PERMILLE: &str = "ns_acct_affected_permille";
    /// Worst tracked `Σ p²` moment, scaled by 1e6
    /// ([`super::AccountantTelemetry::record_worst_stats`]).
    pub const ACCT_WORST_SUM_SQ_MICRO: &str = "ns_acct_worst_sum_sq_micro";
    /// Worst tracked support ratio, in permille.
    pub const ACCT_WORST_SUPPORT_PERMILLE: &str = "ns_acct_worst_support_permille";
    /// Admission batches decided (admitted or refused).
    pub const ADMIT_BATCHES_TOTAL: &str = "ns_admit_batches_total";
    /// Reports admitted.
    pub const ADMIT_REPORTS_TOTAL: &str = "ns_admit_reports_total";
    /// Admission batches refused.
    pub const ADMIT_REFUSALS_TOTAL: &str = "ns_admit_refusals_total";
    /// Relay messages sent, totalled over all users and rounds.
    pub const TRAFFIC_SENT_TOTAL: &str = "ns_traffic_sent_total";
    /// Largest per-user load observed in the latest round.
    pub const TRAFFIC_PEAK_LOAD: &str = "ns_traffic_peak_load";
}

/// Preregistered handles for the streaming accountant's phase breakdown:
/// dense advances, speculate-vs-commit timing and the affected-column
/// fractions of the delta pipeline.
#[derive(Clone, Debug)]
pub struct AccountantTelemetry {
    pub(crate) clock: Clock,
    pub(crate) advance_ns: Histogram,
    pub(crate) speculate_ns: Histogram,
    pub(crate) commit_ns: Histogram,
    pub(crate) speculated: Counter,
    pub(crate) commits_sparse: Counter,
    pub(crate) commits_dense: Counter,
    pub(crate) affected_permille: Histogram,
    worst_sum_sq_micro: Gauge,
    worst_support_permille: Gauge,
}

impl AccountantTelemetry {
    /// Registers (or re-binds) the accountant metrics in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        AccountantTelemetry {
            clock: registry.clock().clone(),
            advance_ns: registry.histogram(names::ACCT_ADVANCE_NS),
            speculate_ns: registry.histogram(names::ACCT_SPECULATE_NS),
            commit_ns: registry.histogram(names::ACCT_COMMIT_NS),
            speculated: registry.counter(names::ACCT_SPECULATED_TOTAL),
            commits_sparse: registry.counter(names::ACCT_COMMITS_SPARSE_TOTAL),
            commits_dense: registry.counter(names::ACCT_COMMITS_DENSE_TOTAL),
            affected_permille: registry.histogram(names::ACCT_AFFECTED_PERMILLE),
            worst_sum_sq_micro: registry.gauge(names::ACCT_WORST_SUM_SQ_MICRO),
            worst_support_permille: registry.gauge(names::ACCT_WORST_SUPPORT_PERMILLE),
        }
    }

    /// Publishes a worst-case [`ns_graph::ensemble::RowStats`] to the
    /// registry gauges — the `RowStats` adapter.  Fixed-point scaled
    /// (`Σ p²` by 1e6, support ratio to permille) because gauges are
    /// integers.
    pub fn record_worst_stats(&self, stats: &ns_graph::ensemble::RowStats) {
        self.worst_sum_sq_micro
            .set((stats.sum_of_squares.max(0.0) * 1e6) as u64);
        self.worst_support_permille
            .set((stats.support_ratio.max(0.0) * 1e3) as u64);
    }
}

/// A shared, lockable [`TraceWriter`] — the admission audit log and the
/// durable runtime's structured trace funnel into one ring so flushed
/// JSONL interleaves in record order.  The mutex is held only for the
/// fixed-size copy of one event (or for a flush, which callers keep off
/// steady-state paths), and recording never allocates.
#[derive(Clone)]
pub struct AuditSink(Arc<Mutex<TraceWriter>>);

impl AuditSink {
    /// Wraps a writer for shared recording.
    pub fn new(writer: TraceWriter) -> Self {
        AuditSink(Arc::new(Mutex::new(writer)))
    }

    /// Records one event (drops it silently if the lock is poisoned —
    /// observability must never take the run down).
    pub fn record(&self, ev: TraceEvent) {
        if let Ok(mut writer) = self.0.lock() {
            writer.record(ev);
        }
    }

    /// Drains the buffered events as JSONL into `out`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn flush_to(&self, out: &mut dyn io::Write) -> io::Result<usize> {
        match self.0.lock() {
            Ok(mut writer) => writer.flush_to(out),
            Err(_) => Ok(0),
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.0.lock().map(|w| w.len()).unwrap_or(0)
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for AuditSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditSink")
            .field("len", &self.len())
            .finish()
    }
}

/// The coordinator's full telemetry bundle: engine phase timers, the
/// accountant breakdown, admission counters, the traffic adapter and
/// (optionally) the admission audit log.  Clone-cheap; attach with
/// [`crate::service::ShuffleCoordinator::set_telemetry`].
#[derive(Clone, Debug)]
pub struct CoordinatorTelemetry {
    pub(crate) engine: EngineTelemetry,
    pub(crate) accountant: AccountantTelemetry,
    pub(crate) traffic: TrafficTelemetry,
    pub(crate) admit_batches: Counter,
    pub(crate) admit_reports: Counter,
    pub(crate) admit_refusals: Counter,
    pub(crate) audit: Option<AuditSink>,
    /// Parameters the admission audit quotes the live `(ε, δ)` at; with
    /// `None` the audit records `null` for both.
    pub(crate) quote_params: Option<AccountantParams>,
}

impl CoordinatorTelemetry {
    /// Registers the full service-layer catalogue in `registry`.  No audit
    /// log and no quote parameters until the builders below add them.
    pub fn register(registry: &MetricsRegistry) -> Self {
        CoordinatorTelemetry {
            engine: EngineTelemetry::register(registry),
            accountant: AccountantTelemetry::register(registry),
            traffic: TrafficTelemetry::register(registry),
            admit_batches: registry.counter(names::ADMIT_BATCHES_TOTAL),
            admit_reports: registry.counter(names::ADMIT_REPORTS_TOTAL),
            admit_refusals: registry.counter(names::ADMIT_REFUSALS_TOTAL),
            audit: None,
            quote_params: None,
        }
    }

    /// Attaches the admission audit log: every admit/refuse decision is
    /// recorded into `sink` as a structured `admit` event.
    pub fn with_audit(mut self, sink: AuditSink) -> Self {
        self.audit = Some(sink);
        self
    }

    /// Sets the parameters audit records quote the live `(ε, δ)` under.
    pub fn with_quote_params(mut self, params: AccountantParams) -> Self {
        self.quote_params = Some(params);
        self
    }

    /// The engine phase-timer share of the bundle.
    pub fn engine(&self) -> &EngineTelemetry {
        &self.engine
    }

    /// The accountant share of the bundle.
    pub fn accountant(&self) -> &AccountantTelemetry {
        &self.accountant
    }

    /// The attached audit sink, if any.
    pub fn audit(&self) -> Option<&AuditSink> {
        self.audit.as_ref()
    }

    /// Counts one refused batch decided *outside* the service's own
    /// admission path (the durable layer's pre-checks refuse before
    /// [`crate::service::ShuffleCoordinator::admit`] runs) and returns the
    /// decision number, so every refusal still lands in the same batch
    /// sequence the audit log records.
    pub fn record_external_refusal(&self) -> u64 {
        self.admit_batches.inc();
        self.admit_refusals.inc();
        self.admit_batches.get()
    }
}

/// Registry adapter over the per-round traffic statistics: total relay
/// messages and the latest round's peak load.
#[derive(Clone, Debug)]
pub struct TrafficTelemetry {
    sent_total: Counter,
    peak_load: Gauge,
}

impl TrafficTelemetry {
    /// Registers (or re-binds) the traffic metrics in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        TrafficTelemetry {
            sent_total: registry.counter(names::TRAFFIC_SENT_TOTAL),
            peak_load: registry.gauge(names::TRAFFIC_PEAK_LOAD),
        }
    }

    /// Folds one round's statistics into the registry slots.
    pub fn record_round(&self, stats: &RoundStats<'_>) {
        let sent: u64 = stats.sent.iter().map(|&s| u64::from(s)).sum();
        self.sent_total.add(sent);
        let peak = stats.load.iter().copied().max().unwrap_or(0);
        self.peak_load.set(u64::from(peak));
    }
}

/// The [`RoundObserver`] adapter: forwards every round to the wrapped
/// observer unchanged and, when telemetry is attached, folds the same
/// statistics into the registry — which is how the coordinator keeps
/// [`crate::metrics::TrafficRecorder`] as its source of truth while the
/// registry sees the identical stream.
pub struct ObservedRounds<'a, O> {
    inner: &'a mut O,
    telemetry: Option<&'a TrafficTelemetry>,
}

impl<'a, O: RoundObserver> ObservedRounds<'a, O> {
    /// Wraps `inner`; with `telemetry` `None` this is a zero-cost
    /// passthrough.
    pub fn new(inner: &'a mut O, telemetry: Option<&'a TrafficTelemetry>) -> Self {
        ObservedRounds { inner, telemetry }
    }
}

impl<O: RoundObserver> RoundObserver for ObservedRounds<'_, O> {
    fn on_round(&mut self, stats: &RoundStats<'_>) {
        if let Some(t) = self.telemetry {
            t.record_round(stats);
        }
        self.inner.on_round(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_rounds_forwards_and_folds() {
        let registry = MetricsRegistry::new();
        let traffic = TrafficTelemetry::register(&registry);
        let mut recorder = crate::metrics::TrafficRecorder::new(3);
        {
            let mut observed = ObservedRounds::new(&mut recorder, Some(&traffic));
            observed.on_round(&RoundStats {
                round: 1,
                sent: &[1, 2, 0],
                load: &[0, 2, 1],
            });
        }
        assert_eq!(recorder.rounds(), 1);
        assert_eq!(recorder.messages_per_user(), &[1, 2, 0]);
        let rendered = registry.render();
        assert!(rendered.contains("counter ns_traffic_sent_total 3"));
        assert!(rendered.contains("gauge ns_traffic_peak_load 2"));
    }

    #[test]
    fn audit_sink_records_and_flushes_jsonl() {
        let (clock, _driver) = Clock::fake();
        let sink = AuditSink::new(TraceWriter::new(clock, 8));
        sink.record(TraceEvent::Admit {
            batch: 1,
            reports: 10,
            accepted: true,
            reason: "ok",
            epsilon: 0.5,
            delta: 1e-6,
        });
        assert_eq!(sink.len(), 1);
        let mut out = Vec::new();
        assert_eq!(sink.flush_to(&mut out).unwrap(), 1);
        let text = String::from_utf8(out).unwrap();
        ns_obs::schema::validate_jsonl(&text).expect("schema");
        assert!(text.contains("\"reason\": \"ok\""));
    }

    #[test]
    fn worst_stats_gauges_are_fixed_point_scaled() {
        let registry = MetricsRegistry::new();
        let acct = AccountantTelemetry::register(&registry);
        acct.record_worst_stats(&ns_graph::ensemble::RowStats {
            sum_of_squares: 0.25,
            support_ratio: 0.5,
        });
        let rendered = registry.render();
        assert!(rendered.contains("gauge ns_acct_worst_sum_sq_micro 250000"));
        assert!(rendered.contains("gauge ns_acct_worst_support_permille 500"));
    }
}
