//! The batched mixing engine at scale: one million walkers, streaming metrics.
//!
//! ```text
//! cargo run --release --example mixing_engine_scale
//! # with data-parallel rounds:
//! cargo run --release --features parallel --example mixing_engine_scale
//! # CI smoke run at a small population:
//! NS_SCALE_N=20000 cargo run --release --example mixing_engine_scale
//! # lane-buffered draw mode (one u64 per walker; statistically equivalent):
//! NS_SCALE_MODE=fast cargo run --release --example mixing_engine_scale
//! ```
//!
//! Where the quickstart example runs the full protocol (crypto envelopes,
//! curator, accountant), this one exercises the shared round-execution core
//! directly: a million-node regular graph, 30 exchange rounds over flat
//! struct-of-arrays state, and a custom [`RoundObserver`] that watches the
//! load distribution converge toward the balls-into-bins limit while the
//! rounds execute — no post-hoc pass over a million client objects.

use ns_graph::generators::random_regular;
use ns_graph::mixing_engine::MixingEngine;
#[cfg(not(feature = "parallel"))]
use ns_graph::mixing_engine::{RoundObserver, RoundStats};
use ns_graph::rng::seeded_rng;
use ns_graph::round::DrawMode;
use ns_graph::walk::WalkConfig;
use ns_obs::say;
use std::time::Instant;

const TOPIC: &str = "mixing_engine_scale";

/// Streams a per-round summary of the load vector.
#[cfg(not(feature = "parallel"))]
struct LoadWatcher;

#[cfg(not(feature = "parallel"))]
impl RoundObserver for LoadWatcher {
    fn on_round(&mut self, stats: &RoundStats<'_>) {
        if !stats.round.is_multiple_of(5) {
            return;
        }
        let n = stats.load.len() as f64;
        let empty = stats.load.iter().filter(|&&l| l == 0).count() as f64;
        let max = stats.load.iter().max().copied().unwrap_or(0);
        say!(
            TOPIC,
            "round {:>2}: {:>5.1}% empty holders (e^-1 = 36.8% at stationarity), max load {}",
            stats.round,
            100.0 * empty / n,
            max
        );
    }
}

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // `NS_SCALE_N` overrides the population (mirroring `NS_EXACT_N` in
    // `exact_accounting_scale.rs`) so CI can smoke-run this at small n.
    let n: usize = std::env::var("NS_SCALE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    // `NS_SCALE_MODE=fast` switches the engine to the lane-buffered draw
    // mode (see `ns_graph::round::DrawMode`); the default `compat` consumes
    // the RNG draw-for-draw like the historical loop.
    let mode = match std::env::var("NS_SCALE_MODE").as_deref() {
        Ok("fast") => DrawMode::Fast,
        _ => DrawMode::Compat,
    };
    let rounds = 30;
    say!(
        TOPIC,
        "generating a {n}-node 8-regular communication graph ..."
    );
    let mut rng = seeded_rng(7);
    let graph = random_regular(n, 8, &mut rng)?;

    let mut engine = MixingEngine::one_walker_per_node(&graph)?;
    engine.set_draw_mode(mode);
    let start = Instant::now();

    #[cfg(feature = "parallel")]
    {
        say!(
            TOPIC,
            "running {rounds} data-parallel walker-order rounds ..."
        );
        engine.run_parallel(WalkConfig::simple(rounds), 42)?;
    }
    #[cfg(not(feature = "parallel"))]
    {
        say!(
            TOPIC,
            "running {rounds} holder-order rounds with streaming metrics ..."
        );
        engine.run_holder_observed(WalkConfig::simple(rounds), &mut rng, &mut LoadWatcher)?;
    }

    let elapsed = start.elapsed();
    let load = engine.load_vector();
    let empty = load.iter().filter(|&&l| l == 0).count();
    say!(
        TOPIC,
        "moved {n} reports x {rounds} rounds in {elapsed:.2?} \
         ({:.1} M report-moves/s)",
        (n * rounds) as f64 / elapsed.as_secs_f64() / 1e6
    );
    say!(
        TOPIC,
        "final load: {:.1}% empty holders, max {} reports at one node",
        100.0 * empty as f64 / n as f64,
        load.iter().max().unwrap()
    );
    Ok(())
}
