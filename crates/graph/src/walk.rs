//! Discrete random-walk engine for report exchange.
//!
//! The distribution-level machinery in [`crate::distribution`] tracks where a
//! report *probably* is; this module moves concrete walkers (reports) between
//! nodes, which is what the protocol simulation in the core crate and the
//! utility experiments (Figure 9) need.  Every report performs an independent
//! random walk: in each round, each report held at node `u` is forwarded to a
//! uniformly random neighbour of `u` (Algorithms 1 and 2 of the paper).
//!
//! [`WalkEngine`] is a thin adapter over the shared batched round-execution
//! core in [`crate::mixing_engine`]; it exists to keep the historical
//! walker-oriented API (and its exact sampled trajectories) stable while the
//! heavy lifting lives in one place.  [`LazyWalk`] adds a per-round
//! probability of a report staying put, which models temporarily unavailable
//! users (Section 4.5) and also restores ergodicity on bipartite graphs.

use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};
use crate::mixing_engine::MixingEngine;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Checks the shared laziness-domain invariant `laziness ∈ [0, 1)`.
///
/// Every layer that accepts a laziness parameter (the walk configuration
/// here, the protocol simulation configuration in the core crate) validates
/// against this single helper so the rule and its message cannot drift.
///
/// # Errors
///
/// Returns the human-readable violation message, to be wrapped in the
/// caller's error type.
pub fn validate_laziness(laziness: f64) -> std::result::Result<(), String> {
    if (0.0..1.0).contains(&laziness) {
        Ok(())
    } else {
        Err(format!("laziness must be in [0, 1), got {laziness}"))
    }
}

/// Configuration of a walk simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WalkConfig {
    /// Number of communication rounds `t`.
    pub rounds: usize,
    /// Probability that a report stays at its current holder in a round
    /// (0 for the simple walk of Algorithms 1 and 2).
    pub laziness: f64,
}

impl WalkConfig {
    /// A simple (non-lazy) walk of `rounds` rounds.
    pub fn simple(rounds: usize) -> Self {
        WalkConfig {
            rounds,
            laziness: 0.0,
        }
    }

    /// A lazy walk of `rounds` rounds with the given stay probability.
    pub fn lazy(rounds: usize, laziness: f64) -> Self {
        WalkConfig { rounds, laziness }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if `laziness ∉ [0, 1)`.
    pub fn validate(&self) -> Result<()> {
        validate_laziness(self.laziness).map_err(GraphError::InvalidParameters)
    }
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig::simple(0)
    }
}

/// Moves a set of walkers (reports) over a graph, one round at a time.
///
/// Walker `w` is identified by its index in the position vector; the caller
/// attaches meaning (e.g. "report produced by user `w`") externally.  All
/// state and round execution are delegated to the shared
/// [`MixingEngine`]; rounds run in walker order, which reproduces the
/// historical `WalkEngine` trajectories draw for draw.
#[derive(Debug, Clone)]
pub struct WalkEngine<'g> {
    inner: MixingEngine<'g>,
}

impl<'g> WalkEngine<'g> {
    /// Creates an engine with one walker per node, walker `i` starting at
    /// node `i` — the initial condition of network shuffling, where every
    /// user holds exactly her own randomized report.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] / [`GraphError::IsolatedNode`] for graphs
    /// the walk cannot run on.
    pub fn one_walker_per_node(graph: &'g Graph) -> Result<Self> {
        Ok(WalkEngine {
            inner: MixingEngine::one_walker_per_node(graph)?,
        })
    }

    /// Creates an engine with walkers at the given starting nodes.
    ///
    /// # Errors
    ///
    /// Same as [`WalkEngine::one_walker_per_node`], plus
    /// [`GraphError::NodeOutOfRange`] if a start is out of range.
    pub fn with_starts(graph: &'g Graph, starts: Vec<NodeId>) -> Result<Self> {
        Ok(WalkEngine {
            inner: MixingEngine::with_starts(graph, starts)?,
        })
    }

    /// The shared round-execution core backing this walk.
    pub fn engine(&mut self) -> &mut MixingEngine<'g> {
        &mut self.inner
    }

    /// Number of walkers being tracked.
    pub fn walker_count(&self) -> usize {
        self.inner.walker_count()
    }

    /// Number of rounds executed so far.
    pub fn round(&self) -> usize {
        self.inner.round()
    }

    /// Current position of walker `w`.
    pub fn position(&self, walker: usize) -> NodeId {
        self.inner.position(walker)
    }

    /// Current positions of all walkers (`positions[w] = holder of w`),
    /// in the engine's u32-compressed storage (graphs are capped at
    /// `2^32 - 1` nodes, so the cast to [`NodeId`] is lossless).
    pub fn positions(&self) -> &[u32] {
        self.inner.positions()
    }

    /// Executes one round: every walker moves to a uniformly random
    /// neighbour of its current node (staying put with probability
    /// `laziness`).
    pub fn step<R: Rng + ?Sized>(&mut self, laziness: f64, rng: &mut R) {
        self.inner.step(laziness, rng);
    }

    /// Runs a full walk according to `config`.
    ///
    /// # Errors
    ///
    /// Propagates [`WalkConfig::validate`] errors.
    pub fn run<R: Rng + ?Sized>(&mut self, config: WalkConfig, rng: &mut R) -> Result<()> {
        self.inner.run(config, rng)
    }

    /// Groups walkers by their current holder: `holders[u]` lists the walker
    /// ids currently at node `u`.  This is the multiset `{s_j}ᵢ` of reports
    /// held by each user at the end of the exchange phase (Figure 2).
    pub fn walkers_by_holder(&self) -> Vec<Vec<usize>> {
        self.inner.walkers_by_holder()
    }

    /// Histogram of reports-per-holder sizes: entry `L_i` of Lemma 5.1.
    pub fn load_vector(&self) -> Vec<usize> {
        self.inner.load_vector()
    }
}

/// Convenience wrapper running a lazy walk with one walker per node.
#[derive(Debug, Clone, Copy)]
pub struct LazyWalk {
    /// Stay probability per round.
    pub laziness: f64,
}

impl LazyWalk {
    /// Creates a lazy-walk runner.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if `laziness ∉ [0, 1)`.
    pub fn new(laziness: f64) -> Result<Self> {
        WalkConfig::lazy(0, laziness).validate()?;
        Ok(LazyWalk { laziness })
    }

    /// Runs `rounds` lazy rounds with one walker per node and returns the
    /// final positions.
    ///
    /// # Errors
    ///
    /// Propagates engine construction errors.
    pub fn run<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        rounds: usize,
        rng: &mut R,
    ) -> Result<Vec<NodeId>> {
        let mut engine = WalkEngine::one_walker_per_node(graph)?;
        engine.run(WalkConfig::lazy(rounds, self.laziness), rng)?;
        Ok(engine.positions().iter().map(|&p| p as NodeId).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::seeded_rng;

    #[test]
    fn walkers_start_at_their_own_node() {
        let g = generators::cycle(5).unwrap();
        let engine = WalkEngine::one_walker_per_node(&g).unwrap();
        assert_eq!(engine.walker_count(), 5);
        for w in 0..5 {
            assert_eq!(engine.position(w), w);
        }
        assert_eq!(engine.round(), 0);
    }

    #[test]
    fn step_moves_every_walker_to_a_neighbor() {
        let g = generators::cycle(6).unwrap();
        let mut engine = WalkEngine::one_walker_per_node(&g).unwrap();
        let before = engine.positions().to_vec();
        let mut rng = seeded_rng(1);
        engine.step(0.0, &mut rng);
        for (w, (&b, &a)) in before.iter().zip(engine.positions().iter()).enumerate() {
            assert!(
                g.neighbors(b as usize).contains(&a),
                "walker {w} moved from {b} to non-neighbor {a}"
            );
        }
        assert_eq!(engine.round(), 1);
    }

    #[test]
    fn lazy_step_can_keep_walkers_in_place() {
        let g = generators::cycle(6).unwrap();
        let mut engine = WalkEngine::one_walker_per_node(&g).unwrap();
        let mut rng = seeded_rng(2);
        engine.step(0.95, &mut rng);
        let stayed = engine
            .positions()
            .iter()
            .enumerate()
            .filter(|(w, &p)| p as usize == *w)
            .count();
        assert!(
            stayed >= 4,
            "expected most walkers to stay, {stayed} stayed"
        );
    }

    #[test]
    fn load_vector_counts_every_walker_exactly_once() {
        let g = generators::complete(8).unwrap();
        let mut engine = WalkEngine::one_walker_per_node(&g).unwrap();
        let mut rng = seeded_rng(3);
        engine.run(WalkConfig::simple(10), &mut rng).unwrap();
        let load = engine.load_vector();
        assert_eq!(load.iter().sum::<usize>(), 8);
        let holders = engine.walkers_by_holder();
        let total: usize = holders.iter().map(|h| h.len()).sum();
        assert_eq!(total, 8);
        for (u, h) in holders.iter().enumerate() {
            assert_eq!(h.len(), load[u]);
        }
    }

    #[test]
    fn empirical_distribution_matches_uniform_limit_on_complete_graph() {
        let g = generators::complete(10).unwrap();
        let mut rng = seeded_rng(4);
        let mut counts = vec![0usize; 10];
        // Many independent walks of walker 0; final position should be ~uniform.
        for _ in 0..3_000 {
            let mut engine = WalkEngine::with_starts(&g, vec![0]).unwrap();
            engine.run(WalkConfig::simple(6), &mut rng).unwrap();
            counts[engine.position(0)] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / 3_000.0;
            assert!((freq - 0.1).abs() < 0.03, "frequency {freq} far from 0.1");
        }
    }

    #[test]
    fn with_starts_validates_inputs() {
        let g = generators::cycle(4).unwrap();
        assert!(WalkEngine::with_starts(&g, vec![0, 5]).is_err());
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(WalkEngine::one_walker_per_node(&empty).is_err());
        let isolated = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(WalkEngine::one_walker_per_node(&isolated).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(WalkConfig::lazy(5, 1.0).validate().is_err());
        assert!(WalkConfig::lazy(5, -0.1).validate().is_err());
        assert!(WalkConfig::lazy(5, 0.3).validate().is_ok());
        assert!(WalkConfig::simple(5).validate().is_ok());
        assert!(validate_laziness(f64::NAN).is_err());
    }

    #[test]
    fn lazy_walk_runner_end_to_end() {
        let g = generators::cycle(4).unwrap(); // bipartite; lazy walk still fine
        let lazy = LazyWalk::new(0.4).unwrap();
        let mut rng = seeded_rng(5);
        let positions = lazy.run(&g, 20, &mut rng).unwrap();
        assert_eq!(positions.len(), 4);
        assert!(positions.iter().all(|&p| p < 4));
        assert!(LazyWalk::new(1.2).is_err());
    }
}
