//! Approximate-DP → pure-DP reduction (Lemma 5.2 of the paper, due to Balle
//! et al. / Cheu et al.).
//!
//! The amplification theorems are proved for *pure* ε₀-DP local randomizers.
//! Lemma 5.2 extends them to `(ε₀, δ₀)`-DP randomizers: provided
//!
//! ```text
//! δ₀ ≤ (1 − e^{−ε₀}) δ₁ / (4 e^{ε₀} (2 + ln(2/δ₁) / ln(1/(1 − e^{−5ε₀}))))
//! ```
//!
//! there exists an `8ε₀`-pure local randomizer within total-variation
//! distance `δ₁` of the original on every input.  The `(ε₀, δ₀)` corollaries
//! of Theorems 5.3–5.6 are then obtained by running the pure-DP analysis at
//! `8ε₀` and paying an extra `n (e^{ε'} + 1) δ₁` in the final δ.

use crate::types::{validate_delta, validate_positive_epsilon, DpError, Result};
use serde::{Deserialize, Serialize};

/// The pure-DP surrogate produced by Lemma 5.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PureSurrogate {
    /// The surrogate's pure-DP parameter (`8 ε₀`).
    pub epsilon: f64,
    /// The per-input total-variation distance `δ₁` between the surrogate and
    /// the original randomizer.
    pub tv_distance: f64,
}

/// The largest admissible `δ₀` for Lemma 5.2 given `ε₀` and the chosen `δ₁`.
///
/// # Errors
///
/// Validation of `ε₀ > 0` and `δ₁ ∈ (0, 1)`.
pub fn delta0_threshold(epsilon_0: f64, delta_1: f64) -> Result<f64> {
    let epsilon_0 = validate_positive_epsilon(epsilon_0)?;
    let delta_1 = validate_delta(delta_1)?;
    let numerator = (1.0 - (-epsilon_0).exp()) * delta_1;
    let log_ratio = (2.0 / delta_1).ln() / (1.0 / (1.0 - (-5.0 * epsilon_0).exp())).ln();
    let denominator = 4.0 * epsilon_0.exp() * (2.0 + log_ratio);
    Ok(numerator / denominator)
}

/// Applies Lemma 5.2: checks that `δ₀` is small enough and returns the
/// `8ε₀`-pure surrogate description.
///
/// # Errors
///
/// [`DpError::InvalidParameters`] if `δ₀` exceeds the admissible threshold;
/// the error message includes the threshold so callers can adjust `δ₁`.
pub fn approximate_to_pure(epsilon_0: f64, delta_0: f64, delta_1: f64) -> Result<PureSurrogate> {
    let epsilon_0 = validate_positive_epsilon(epsilon_0)?;
    if !delta_0.is_finite() || delta_0 < 0.0 {
        return Err(DpError::InvalidDelta(delta_0));
    }
    let threshold = delta0_threshold(epsilon_0, delta_1)?;
    if delta_0 > threshold {
        return Err(DpError::InvalidParameters(format!(
            "delta_0 = {delta_0:.3e} exceeds the Lemma 5.2 threshold {threshold:.3e} \
             for epsilon_0 = {epsilon_0}, delta_1 = {delta_1:.3e}"
        )));
    }
    Ok(PureSurrogate {
        epsilon: 8.0 * epsilon_0,
        tv_distance: delta_1,
    })
}

/// The additional δ contribution paid when lifting a pure-DP analysis of the
/// surrogate back to the original `(ε₀, δ₀)` randomizers over `n` users:
/// `n (e^{ε'} + 1) δ₁` (see the statement of Theorem 5.3).
pub fn union_bound_delta(n: usize, epsilon_prime: f64, delta_1: f64) -> f64 {
    n as f64 * (epsilon_prime.exp() + 1.0) * delta_1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_matches_hand_computation() {
        let eps0 = 1.0f64;
        let delta1 = 1e-8f64;
        let numerator = (1.0 - (-1.0f64).exp()) * delta1;
        let log_ratio = (2.0f64 / delta1).ln() / (1.0 / (1.0 - (-5.0f64).exp())).ln();
        let expected = numerator / (4.0 * 1.0f64.exp() * (2.0 + log_ratio));
        let got = delta0_threshold(eps0, delta1).unwrap();
        assert!((got - expected).abs() < 1e-24);
        assert!(got > 0.0);
        assert!(got < delta1);
    }

    #[test]
    fn threshold_validates_inputs() {
        assert!(delta0_threshold(0.0, 1e-8).is_err());
        assert!(delta0_threshold(1.0, 0.0).is_err());
        assert!(delta0_threshold(1.0, 1.0).is_err());
    }

    #[test]
    fn conversion_accepts_small_delta0_and_rejects_large() {
        let eps0 = 0.5;
        let delta1 = 1e-9;
        let threshold = delta0_threshold(eps0, delta1).unwrap();
        let ok = approximate_to_pure(eps0, threshold * 0.5, delta1).unwrap();
        assert!((ok.epsilon - 4.0).abs() < 1e-12);
        assert_eq!(ok.tv_distance, delta1);
        assert!(approximate_to_pure(eps0, threshold * 2.0, delta1).is_err());
        // A pure randomizer (delta_0 = 0) always qualifies.
        assert!(approximate_to_pure(eps0, 0.0, delta1).is_ok());
    }

    #[test]
    fn conversion_validates_inputs() {
        assert!(approximate_to_pure(0.0, 1e-12, 1e-9).is_err());
        assert!(approximate_to_pure(1.0, -1e-12, 1e-9).is_err());
        assert!(approximate_to_pure(1.0, f64::NAN, 1e-9).is_err());
    }

    #[test]
    fn union_bound_delta_scales_linearly_in_n() {
        let a = union_bound_delta(1_000, 1.0, 1e-12);
        let b = union_bound_delta(2_000, 1.0, 1e-12);
        assert!((b / a - 2.0).abs() < 1e-12);
        assert!((union_bound_delta(1, 0.0, 1e-9) - 2e-9).abs() < 1e-20);
    }
}
