//! Quickstart: run network shuffling end to end on a random regular graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds a 2,000-user communication network, has every user
//! randomize a 4-category survey answer with ε₀ = 1 local DP, exchanges the
//! reports for the graph's mixing time, and prints (a) the frequency
//! estimate the curator obtains and (b) the amplified central (ε, δ)
//! guarantee certified by the accountant.

use network_shuffle::prelude::*;
use ns_dp::estimators::estimate_frequencies;
use ns_dp::mechanisms::RandomizedResponse;
use ns_graph::generators::random_regular;
use ns_obs::say;

const TOPIC: &str = "quickstart";

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let n = 2_000;
    let epsilon_0 = 1.0;
    let seed = 42;

    // 1. The communication network: every user knows 10 peers.
    let mut rng = ns_graph::rng::seeded_rng(seed);
    let graph = random_regular(n, 10, &mut rng)?;
    say!(
        TOPIC,
        "communication network: n = {}, m = {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. Ground-truth data: a skewed categorical distribution.
    let truth: Vec<usize> = (0..n)
        .map(|i| {
            if i % 10 < 6 {
                0
            } else if i % 10 < 9 {
                1
            } else {
                2
            }
        })
        .collect();
    let randomizer = RandomizedResponse::new(4, epsilon_0)?;

    // 3. How long to shuffle: the paper's stopping rule t = alpha^-1 log n.
    let accountant = NetworkShuffleAccountant::new(&graph)?;
    let rounds = accountant.mixing_time();
    say!(
        TOPIC,
        "spectral gap = {:.4}, mixing time = {rounds} rounds",
        accountant.mixing_profile().spectral_gap
    );

    // 4. Run the A_all protocol.
    let outcome = run_protocol_with_randomizer(
        &graph,
        &truth,
        &randomizer,
        SimulationConfig::all(rounds, seed),
        &0usize,
    )?;
    say!(
        TOPIC,
        "curator received {} reports ({} null responses)",
        outcome.collected.report_count(),
        outcome.collected.null_response_count()
    );
    say!(
        TOPIC,
        "traffic: {:.1} relay messages per user, at most {} reports held at once",
        outcome.metrics.mean_messages_per_user(),
        outcome.metrics.max_peak_reports()
    );

    // 5. Utility: unbiased frequency estimation from the randomized reports.
    let reports: Vec<usize> = outcome
        .collected
        .all_payloads()
        .into_iter()
        .copied()
        .collect();
    let estimate = estimate_frequencies(&randomizer, &reports)?;
    say!(
        TOPIC,
        "estimated frequencies: {:?}",
        estimate
            .iter()
            .map(|x| (x * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    say!(TOPIC, "true frequencies:      [0.600, 0.300, 0.100, 0.000]");

    // 6. Privacy: the amplified central guarantee.
    let params = AccountantParams::with_defaults(n, epsilon_0)?;
    let central =
        accountant.central_guarantee(ProtocolKind::All, Scenario::Stationary, &params, rounds)?;
    say!(TOPIC, "local guarantee:   {epsilon_0}-LDP per user");
    say!(
        TOPIC,
        "central guarantee: {central} after network shuffling"
    );

    // 7. Empirical anonymity check: how many reports returned to their owner?
    let view = AdversaryView::from_submissions(outcome.collected.submissions());
    let stats = view.linkage_stats(&graph);
    say!(
        TOPIC,
        "adversary linkage: {:.2}% of reports were uploaded by their own producer (1/n = {:.2}%)",
        100.0 * stats.return_rate(),
        100.0 / n as f64
    );
    Ok(())
}
