//! Watts–Strogatz small-world graphs.
//!
//! Interpolates between a ring lattice (slow mixing, high clustering) and a
//! random graph (fast mixing).  Useful for studying how the rewiring
//! probability — i.e. how "social" vs. "geographic" the communication network
//! is — affects the privacy/communication trade-off of Figure 4.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use rand::Rng;

/// Generates a Watts–Strogatz graph: a ring lattice on `n` nodes where each
/// node connects to its `k` nearest neighbours (`k` even), and every lattice
/// edge is rewired to a uniformly random endpoint with probability `beta`.
///
/// Rewiring never creates self-loops or duplicate edges; if no valid target
/// exists the edge is kept in place.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `k` is odd or zero, `k >= n`, or
/// `beta ∉ [0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph> {
    if k == 0 || !k.is_multiple_of(2) {
        return Err(GraphError::InvalidParameters(format!(
            "watts_strogatz requires a positive even k, got {k}"
        )));
    }
    if k >= n {
        return Err(GraphError::InvalidParameters(format!(
            "watts_strogatz requires k < n, got k = {k}, n = {n}"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameters(format!(
            "beta must be in [0, 1], got {beta}"
        )));
    }

    let mut builder = GraphBuilder::new(n);
    for i in 0..n {
        for offset in 1..=(k / 2) {
            let neighbor = (i + offset) % n;
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a random node.
                let mut rewired = None;
                for _ in 0..64 {
                    let candidate = rng.gen_range(0..n);
                    if candidate != i && !builder.has_edge(i, candidate) {
                        rewired = Some(candidate);
                        break;
                    }
                }
                match rewired {
                    Some(target) => builder.add_edge(i, target)?,
                    None => {
                        if !builder.has_edge(i, neighbor) {
                            builder.add_edge(i, neighbor)?;
                        }
                    }
                }
            } else if !builder.has_edge(i, neighbor) {
                builder.add_edge(i, neighbor)?;
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn beta_zero_is_the_ring_lattice() {
        let mut rng = seeded_rng(31);
        let g = watts_strogatz(30, 4, 0.0, &mut rng).unwrap();
        assert!(g.is_regular());
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.edge_count(), 60);
        assert!(g.is_connected());
    }

    #[test]
    fn rewiring_preserves_edge_count_approximately() {
        let mut rng = seeded_rng(32);
        let g = watts_strogatz(200, 6, 0.3, &mut rng).unwrap();
        // Rewiring can only drop an edge in the rare fallback case.
        assert!(g.edge_count() as f64 >= 0.95 * 600.0);
        assert!(g.edge_count() <= 600);
    }

    #[test]
    fn high_beta_improves_mixing() {
        let mut rng = seeded_rng(33);
        let lattice = watts_strogatz(300, 6, 0.0, &mut rng).unwrap();
        let small_world = watts_strogatz(300, 6, 0.5, &mut rng).unwrap();
        let opts = crate::spectral::SpectralOptions::default();
        let gap_lattice = crate::spectral::SpectralAnalysis::compute(&lattice, opts).spectral_gap();
        let gap_sw = crate::spectral::SpectralAnalysis::compute(&small_world, opts).spectral_gap();
        assert!(
            gap_sw > gap_lattice,
            "gap_sw = {gap_sw}, gap_lattice = {gap_lattice}"
        );
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut rng = seeded_rng(34);
        assert!(watts_strogatz(10, 3, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 0, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(4, 4, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 4, 1.5, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = watts_strogatz(100, 4, 0.2, &mut seeded_rng(77)).unwrap();
        let b = watts_strogatz(100, 4, 0.2, &mut seeded_rng(77)).unwrap();
        assert_eq!(a, b);
    }
}
