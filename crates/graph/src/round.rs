//! The unified round-execution kernel: one holder-order step routine for
//! every engine.
//!
//! Historically the holder-order exchange round existed in four divergent
//! copies — `MixingEngine::step_holder`, `MixingEngine::step_holder_masked`,
//! the dynamic retarget path and the per-shard loop in
//! [`crate::sharded_engine`] — so every new scenario axis (masking, churn,
//! sharding) multiplied loop variants instead of composing.  This module is
//! the merge point: the *update stream* (which topology, which availability
//! mask, which RNG stream) is described by a [`RoundPlan`], and a single
//! pair of phase routines executes it for every engine:
//!
//! * [`decide_holder_moves`] — the **decide phase**: sweep a holder range in
//!   id order, each holder's bucket in insertion order, drawing every
//!   walker's move through the one sampling rule (`sample_move_masked`).
//!   Survivors (lazy stays *and* masked bounces) are appended to the
//!   caller's [`RoundArena`], and every delivery is appended to the arena's
//!   delivery buffers in send order — the monolithic engine replays them as
//!   a flat arrival list, the sharded engine routes them into
//!   per-destination shard outboxes.
//! * [`merge_round_buckets`] — the **merge phase**: one counting sort that
//!   rebuilds the next round's holder buckets from survivors (first, in
//!   previous bucket order) and an ordered arrival stream (second, in the
//!   order the caller replays it).  The monolithic engine replays its own
//!   send order; the sharded engine replays arrivals grouped by source
//!   shard in ascending id — which is exactly what makes its exchange phase
//!   execution-order-free.
//!
//! [`sweep_walker_order`] is the degenerate walker-order form (no buckets,
//! no statistics) behind `MixingEngine::step` / `step_masked`.
//!
//! # The `RoundPlan` contract
//!
//! A plan is a *view*: the topology may be a static CSR [`Graph`], a
//! [`crate::dynamic::DynamicGraph`] snapshot (engines re-read their graph
//! reference every round, so `retarget` composes with every plan), or the
//! shared global CSR that a shard samples its local holder range against.
//! The mask, when present, must cover every node of that topology.  The
//! kernel guarantees:
//!
//! * **One sampling rule per draw mode.**  In [`DrawMode::Compat`] every
//!   walker consumes the stream identically — one lazy `f64` (only when
//!   `laziness > 0`), then one uniform neighbour index — regardless of
//!   masking or sharding, bit-for-bit the historical loops.  In
//!   [`DrawMode::Fast`] every walker consumes exactly **one `u64`** pulled
//!   through the RNG's bulk lane-buffer path ([`rand::RngCore::fill_u64`],
//!   whole ChaCha8 blocks): the low 32 bits decide laziness by integer
//!   threshold, the high 32 bits pick the neighbour by the multiply-shift
//!   reduction `(hi * deg) >> 32` — no division, no rejection loop, and
//!   the same consumption masked or unmasked.  The two modes sample the
//!   same walk distribution (neighbour bias ≤ `deg / 2^32`) but different
//!   realizations; each has its own golden traces.  A plan with
//!   `available: None` is bit-for-bit a plan with an all-available mask in
//!   both modes.
//! * **Exact compositions.**  Masked × static, masked × dynamic
//!   (retarget), and masked × sharded rounds are all executions of this one
//!   routine, so their degeneracies are exact: all-available masks
//!   reproduce the unmasked round bitwise (RNG stream included), and a
//!   1-shard plan reproduces the monolithic engine bitwise.  Multi-shard
//!   plans split the RNG into per-shard streams, so *across* shard counts
//!   the walk is statistically equivalent, never bitwise — the one
//!   composition that is statistical rather than exact.
//! * **Conservation.**  In debug builds the merge asserts that the
//!   counting-sort cursors land exactly on their bucket boundaries (the
//!   two arrival replays agree), and each engine asserts after the merge
//!   that survivors + arrivals (bounced walkers are survivors) equal its
//!   walker count — one shared discipline instead of per-engine ad hoc
//!   checks.
//! * **No steady-state allocation.**  All counting-sort scratch lives in
//!   the caller's [`RoundArena`] and is reused; after warm-up, rounds
//!   allocate nothing (measured in `crates/bench/benches/sharded_mixing.rs`).

use crate::graph::{Graph, NodeId};
use rand::Rng;

/// How a round draws randomness for each walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrawMode {
    /// The historical draw-for-draw stream: one `f64` for the lazy decision
    /// (only when `laziness > 0`), then one rejection-sampled uniform index.
    /// Bitwise identical to the pre-refactor engines; gated by the
    /// `golden_round_traces` suite.
    #[default]
    Compat,
    /// The lane-buffered stream: exactly one `u64` per walker, filled in
    /// whole ChaCha8 blocks, decided branchlessly.  Statistically
    /// equivalent to `Compat`, bitwise gated by its own golden traces.
    Fast,
}

/// Walkers per lane-buffer refill in [`DrawMode::Fast`] — 32 KiB of draws,
/// small enough to stay L1-resident while the decide loop consumes it.
const LANE_CHUNK: usize = 1 << 12;

/// The lazy-stay threshold of the fast draw: a walker stays when the low
/// 32 bits of its draw fall below `floor(laziness * 2^32)`.
#[inline]
fn lazy_threshold(laziness: f64) -> u64 {
    (laziness.clamp(0.0, 1.0) * 4_294_967_296.0) as u64
}

/// Software-prefetches the cache line holding `data[idx]` (no-op off
/// x86_64, and for out-of-range `idx`).  The round kernel's gathers are
/// data-dependent random accesses over arrays far larger than cache at the
/// scales that matter, so issuing the loads a few iterations ahead hides
/// most of the DRAM latency the sweep otherwise stalls on.
#[inline(always)]
#[allow(unsafe_code)]
pub(crate) fn prefetch_read<T>(data: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < data.len() {
        // Safety: the index is bounds-checked above, and prefetch has no
        // architectural effect — it only warms the cache.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(data.as_ptr().add(idx) as *const i8, _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, idx);
    }
}

/// Samples one walker's move at node `at`: `None` to stay (lazy draw), else
/// the uniformly chosen neighbour.
///
/// This is the single definition of the per-walker sampling rule.  Every
/// round form (walker order, holder order, sharded, data-parallel) draws
/// through it, in the same order — one `f64` for the lazy decision (only
/// when `laziness > 0`), then one uniform index — which is what keeps the
/// draw-for-draw parity contract with the historical loops in one place.
#[inline]
pub(crate) fn sample_move<R: Rng + ?Sized>(
    graph: &Graph,
    at: NodeId,
    laziness: f64,
    rng: &mut R,
) -> Option<NodeId> {
    if laziness > 0.0 && rng.gen::<f64>() < laziness {
        return None;
    }
    let nbrs = graph.neighbors(at);
    debug_assert!(
        !nbrs.is_empty(),
        "isolated nodes are rejected at construction"
    );
    Some(nbrs[rng.gen_range(0..nbrs.len())] as NodeId)
}

/// [`sample_move`] under an optional availability mask: the draw sequence
/// is identical (one lazy `f64`, then one uniform index), but a chosen
/// recipient that is unavailable turns the move into a stay — the report
/// could not be delivered this round.  With `None` (or an all-available
/// mask) this is exactly [`sample_move`], so masked rounds degenerate to
/// the static forms bit for bit, RNG stream included.
#[inline]
pub(crate) fn sample_move_masked<R: Rng + ?Sized>(
    graph: &Graph,
    at: NodeId,
    laziness: f64,
    available: Option<&[bool]>,
    rng: &mut R,
) -> Option<NodeId> {
    let dest = sample_move(graph, at, laziness, rng)?;
    match available {
        Some(mask) if !mask[dest] => None,
        _ => Some(dest),
    }
}

/// One round's execution inputs: the topology view, the walk's laziness and
/// an optional availability mask.  See the [module docs](self) for the
/// contract.
#[derive(Debug, Clone, Copy)]
pub struct RoundPlan<'a> {
    /// The topology walkers move on this round — a static CSR, a
    /// [`crate::dynamic::DynamicGraph`] snapshot, or the shared global CSR
    /// a shard samples against.
    pub graph: &'a Graph,
    /// Per-round stay probability of the lazy walk.
    pub laziness: f64,
    /// Availability mask (`available[u]` = can node `u` receive this
    /// round?); `None` is bit-for-bit an all-available mask.
    pub available: Option<&'a [bool]>,
}

impl<'a> RoundPlan<'a> {
    /// The fully-available plan.
    pub fn new(graph: &'a Graph, laziness: f64) -> Self {
        RoundPlan {
            graph,
            laziness,
            available: None,
        }
    }

    /// A plan under an availability mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the node count — the one
    /// shape error the kernel cannot express as a stay.
    pub fn masked(graph: &'a Graph, laziness: f64, available: &'a [bool]) -> Self {
        assert_eq!(
            available.len(),
            graph.node_count(),
            "availability mask has the wrong length"
        );
        RoundPlan {
            graph,
            laziness,
            available: Some(available),
        }
    }
}

/// Reusable counting-sort scratch owned by a plan executor — one per
/// monolithic engine, one per shard.  Buffers grow to their steady-state
/// capacity during the first rounds and are only ever cleared afterwards,
/// so warm rounds perform no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct RoundArena {
    /// Survivors of the decide phase: local holder node of each kept
    /// walker, grouped by holder in ascending sweep order.
    pub(crate) kept_nodes: Vec<u32>,
    /// Walker ids parallel to `kept_nodes`.
    pub(crate) kept_walkers: Vec<u32>,
    /// Next-round bucket array under construction (swapped with the live
    /// buckets at the end of the merge).
    pub(crate) next_walkers: Vec<u32>,
    /// Per-node scatter cursors of the counting sort.
    pub(crate) cursor: Vec<usize>,
    /// This round's deliveries in send order: destination (global node,
    /// u32-compressed) of each delivered walker.  The monolithic engine
    /// replays these as its flat arrival list; the sharded engine routes
    /// them into per-destination-shard outboxes.
    pub(crate) deliver_dests: Vec<u32>,
    /// Walker ids parallel to `deliver_dests`.
    pub(crate) deliver_walkers: Vec<u32>,
    /// Lane buffer of bulk RNG draws ([`DrawMode::Fast`]), refilled in
    /// `LANE_CHUNK`-sized blocks.
    pub(crate) lane: Vec<u64>,
    /// Mask bounces of the last decide phase: walkers whose drawn move
    /// chose an unavailable recipient and therefore stayed.  A lazy stay
    /// is not a bounce (no delivery was attempted); under `None` or an
    /// all-available mask this is always 0.
    pub(crate) bounced: u64,
}

impl RoundArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The decide phase's deliveries in send order, as parallel
    /// `(destinations, walkers)` slices — valid until the next decide.
    pub fn deliveries(&self) -> (&[u32], &[u32]) {
        (&self.deliver_dests, &self.deliver_walkers)
    }

    /// Mask bounces of the last decide phase (0 when unmasked) — the
    /// telemetry layer's mask-bounce count, derived from accounting the
    /// kernel already performs, never from extra draws.
    pub fn bounced(&self) -> u64 {
        self.bounced
    }
}

/// A borrowed view of one holder range's CSR buckets: the walkers held by
/// local node `lu` are `walkers[starts[lu]..starts[lu + 1]]`, in insertion
/// order.
#[derive(Debug, Clone, Copy)]
pub struct HolderBuckets<'a> {
    /// CSR offsets, one entry per local node plus the terminator.
    pub starts: &'a [usize],
    /// Walker ids, bucketed by local node.
    pub walkers: &'a [u32],
}

/// The decide phase of one holder-order round over one holder range, in
/// [`DrawMode::Compat`].
///
/// `holders` enumerates `(local index, global node)` pairs in the order the
/// range is swept — `(u, u)` for the monolithic engine, the shard's
/// `(local id, global id)` table for a shard.  Each holder's walkers (its
/// [`HolderBuckets`] slice) are visited in insertion order and each draws
/// one move from `rng` through the plan's sampling rule.  Survivors — lazy
/// stays *and* masked bounces — are appended to `arena`; every delivery is
/// appended to the arena's delivery buffers (see
/// [`RoundArena::deliveries`]) in send order, and the holder's slot in
/// `sent_local` is incremented (bounces are *not* sent: the delivery never
/// happened).
pub fn decide_holder_moves<R: Rng + ?Sized>(
    plan: &RoundPlan<'_>,
    holders: impl Iterator<Item = (usize, NodeId)>,
    buckets: HolderBuckets<'_>,
    sent_local: &mut [u32],
    arena: &mut RoundArena,
    rng: &mut R,
) {
    arena.kept_nodes.clear();
    arena.kept_walkers.clear();
    arena.deliver_dests.clear();
    arena.deliver_walkers.clear();
    arena.bounced = 0;
    sent_local.fill(0);
    for (lu, u) in holders {
        let held = &buckets.walkers[buckets.starts[lu]..buckets.starts[lu + 1]];
        for &w in held {
            // Same draw sequence as `sample_move_masked`; unrolled so a
            // bounce (move drawn, recipient dark) is distinguishable from
            // a lazy stay (no move drawn) for the arena's bounce count.
            match sample_move(plan.graph, u, plan.laziness, rng) {
                Some(dest) if plan.available.is_none_or(|mask| mask[dest]) => {
                    sent_local[lu] += 1;
                    arena.deliver_dests.push(dest as u32);
                    arena.deliver_walkers.push(w);
                }
                stay => {
                    arena.bounced += stay.is_some() as u64;
                    arena.kept_nodes.push(lu as u32);
                    arena.kept_walkers.push(w);
                }
            }
        }
    }
}

/// The decide phase in [`DrawMode::Fast`]: lane-buffered draws, branchless
/// select.
///
/// The sweep order and the survivor/delivery grouping are identical to
/// [`decide_holder_moves`]; only the per-walker draw differs.  Each walker
/// consumes one `u64` from the lane buffer (refilled from `rng` in whole
/// ChaCha8 blocks, `LANE_CHUNK` draws at a time): laziness is an integer
/// compare on the low 32 bits, the neighbour is the multiply-shift
/// reduction of the high 32 bits over the holder's degree, and the
/// stay/deliver choice is an arithmetic select — both outcome slots are
/// written unconditionally and the matching cursor advances by the flag, so
/// the loop carries no data-dependent branch.  `holders` must cover the
/// bucket range exactly (every walker in `buckets.walkers` is visited
/// once); total stream consumption is `buckets.walkers.len()` draws,
/// masked or not.
pub fn decide_holder_moves_fast<R: Rng + ?Sized>(
    plan: &RoundPlan<'_>,
    holders: impl Iterator<Item = (usize, NodeId)>,
    buckets: HolderBuckets<'_>,
    sent_local: &mut [u32],
    arena: &mut RoundArena,
    rng: &mut R,
) {
    let total = buckets.walkers.len();
    arena.kept_nodes.resize(total, 0);
    arena.kept_walkers.resize(total, 0);
    arena.deliver_dests.resize(total, 0);
    arena.deliver_walkers.resize(total, 0);
    if arena.lane.len() < LANE_CHUNK.min(total) {
        arena.lane.resize(LANE_CHUNK.min(total), 0);
    }
    sent_local.fill(0);
    let (offsets, neighbors) = plan.graph.csr_parts();
    let threshold = lazy_threshold(plan.laziness);
    let mut kept_len = 0usize;
    let mut sent_len = 0usize;
    let mut drawn = 0usize;
    let mut lane_pos = 0usize;
    let mut lane_len = 0usize;
    let mut bounced = 0u64;
    for (lu, u) in holders {
        let row = &neighbors[offsets[u]..offsets[u + 1]];
        let deg = row.len() as u64;
        debug_assert!(deg > 0, "isolated nodes are rejected at construction");
        let held = &buckets.walkers[buckets.starts[lu]..buckets.starts[lu + 1]];
        let mut kept_in_bucket = 0u32;
        for &w in held {
            if lane_pos == lane_len {
                lane_len = LANE_CHUNK.min(total - drawn);
                rng.fill_u64(&mut arena.lane[..lane_len]);
                drawn += lane_len;
                lane_pos = 0;
            }
            let r = arena.lane[lane_pos];
            lane_pos += 1;
            let dest = row[(((r >> 32) * deg) >> 32) as usize];
            let lazy = (r as u32 as u64) < threshold;
            let dark = plan.available.is_some_and(|mask| !mask[dest as usize]);
            let stay = lazy | dark;
            bounced += (!lazy & dark) as u64;
            arena.kept_nodes[kept_len] = lu as u32;
            arena.kept_walkers[kept_len] = w;
            kept_len += stay as usize;
            arena.deliver_dests[sent_len] = dest;
            arena.deliver_walkers[sent_len] = w;
            sent_len += !stay as usize;
            kept_in_bucket += stay as u32;
        }
        sent_local[lu] = held.len() as u32 - kept_in_bucket;
    }
    debug_assert_eq!(
        kept_len + sent_len,
        total,
        "round conservation violated: every walker must survive or be delivered"
    );
    arena.kept_nodes.truncate(kept_len);
    arena.kept_walkers.truncate(kept_len);
    arena.deliver_dests.truncate(sent_len);
    arena.deliver_walkers.truncate(sent_len);
    arena.bounced = bounced;
}

/// The merge phase of one holder-order round over one holder range: a
/// counting sort that rebuilds `bucket_walkers` (and its `bucket_starts`
/// offsets and `load_local` histogram) for the next round from the arena's
/// survivors and an ordered arrival stream.
///
/// `for_each_arrival` must replay the round's arrivals — as
/// `(local destination node, walker)` — in the *canonical* order, and is
/// called exactly twice (once to count, once to scatter); both passes must
/// produce the same sequence.  Survivors land first in each bucket (they
/// are already grouped by node in ascending order, a decide-phase
/// invariant), then arrivals in replay order — exactly the order in which
/// a message-passing simulation would have appended them.
///
/// Debug builds assert that the two arrival replays agree — every
/// counting-sort cursor must land exactly on its bucket boundary — and the
/// engines assert full conservation (survivors + arrivals + bounces =
/// walkers) against their walker counts after the merge.
pub fn merge_round_buckets(
    local_n: usize,
    arena: &mut RoundArena,
    load_local: &mut [u32],
    bucket_starts: &mut [usize],
    bucket_walkers: &mut Vec<u32>,
    mut for_each_arrival: impl FnMut(&mut dyn FnMut(usize, u32)),
) {
    debug_assert_eq!(load_local.len(), local_n);
    debug_assert_eq!(bucket_starts.len(), local_n + 1);
    // Next-round load: survivors plus arrivals.
    load_local.fill(0);
    for &lu in &arena.kept_nodes {
        load_local[lu as usize] += 1;
    }
    for_each_arrival(&mut |lu, _w| {
        load_local[lu] += 1;
    });
    bucket_starts[0] = 0;
    for lu in 0..local_n {
        bucket_starts[lu + 1] = bucket_starts[lu] + load_local[lu] as usize;
    }
    let total = bucket_starts[local_n];
    // Scatter: survivors first, then arrivals in replay order.
    arena.cursor.clear();
    arena.cursor.extend_from_slice(&bucket_starts[..local_n]);
    arena.next_walkers.resize(total, 0);
    for (&lu, &w) in arena.kept_nodes.iter().zip(&arena.kept_walkers) {
        arena.next_walkers[arena.cursor[lu as usize]] = w;
        arena.cursor[lu as usize] += 1;
    }
    {
        let RoundArena {
            next_walkers,
            cursor,
            ..
        } = arena;
        for_each_arrival(&mut |lu, w| {
            next_walkers[cursor[lu]] = w;
            cursor[lu] += 1;
        });
    }
    debug_assert!(
        arena
            .cursor
            .iter()
            .zip(&bucket_starts[1..])
            .all(|(c, s)| c == s),
        "round conservation violated: a counting-sort cursor missed its bucket boundary"
    );
    std::mem::swap(bucket_walkers, &mut arena.next_walkers);
}

/// The walker-order round in [`DrawMode::Compat`]: sweep `positions` once,
/// moving every walker through the plan's sampling rule (an unavailable
/// chosen recipient means the walker stays).  No buckets, no statistics —
/// the cheapest round form.
pub fn sweep_walker_order<R: Rng + ?Sized>(
    plan: &RoundPlan<'_>,
    positions: &mut [u32],
    rng: &mut R,
) {
    for pos in positions.iter_mut() {
        if let Some(dest) = sample_move_masked(
            plan.graph,
            *pos as NodeId,
            plan.laziness,
            plan.available,
            rng,
        ) {
            *pos = dest as u32;
        }
    }
}

/// How many iterations ahead the fast sweep prefetches the CSR offset pair
/// of an upcoming position (stage 1 of the software pipeline).
const PF_FAR: usize = 16;
/// How many iterations ahead the fast sweep prefetches the neighbour row an
/// upcoming position gathers from (stage 2 — its offset was prefetched
/// `PF_FAR`` - ``PF_NEAR` iterations earlier, so reading it here is a
/// likely hit).
const PF_NEAR: usize = 8;

/// The walker-order round in [`DrawMode::Fast`]: lane-buffered draws and a
/// two-stage software-prefetched CSR gather.
///
/// Positions are swept in `LANE_CHUNK`-sized chunks; each chunk's draws
/// are filled into `lane` in whole ChaCha8 blocks, then consumed by a loop
/// that prefetches the offset pair of the position `PF_FAR` iterations
/// ahead and the neighbour row of the position `PF_NEAR` iterations ahead
/// — the two dependent random loads of the gather, each issued early enough
/// to overlap DRAM latency with useful work.  Per-walker consumption is one
/// `u64`, identical to the fast holder decide.
pub fn sweep_walker_order_fast<R: Rng + ?Sized>(
    plan: &RoundPlan<'_>,
    positions: &mut [u32],
    lane: &mut Vec<u64>,
    rng: &mut R,
) {
    let total = positions.len();
    if lane.len() < LANE_CHUNK.min(total) {
        lane.resize(LANE_CHUNK.min(total), 0);
    }
    let (offsets, neighbors) = plan.graph.csr_parts();
    let threshold = lazy_threshold(plan.laziness);
    let mut done = 0usize;
    while done < total {
        let chunk_len = LANE_CHUNK.min(total - done);
        rng.fill_u64(&mut lane[..chunk_len]);
        let chunk = &mut positions[done..done + chunk_len];
        for i in 0..chunk_len {
            if i + PF_FAR < chunk_len {
                prefetch_read(offsets, chunk[i + PF_FAR] as usize);
            }
            if i + PF_NEAR < chunk_len {
                prefetch_read(neighbors, offsets[chunk[i + PF_NEAR] as usize]);
            }
            let pos = chunk[i] as usize;
            let r = lane[i];
            let off = offsets[pos];
            let deg = (offsets[pos + 1] - off) as u64;
            let dest = neighbors[off + (((r >> 32) * deg) >> 32) as usize];
            let stay = ((r as u32 as u64) < threshold)
                | plan.available.is_some_and(|mask| !mask[dest as usize]);
            chunk[i] = if stay { chunk[i] } else { dest };
        }
        done += chunk_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::seeded_rng;

    #[test]
    fn masked_plan_rejects_wrong_mask_length() {
        let g = generators::cycle(6).unwrap();
        let mask = vec![true; 5];
        let result = std::panic::catch_unwind(|| RoundPlan::masked(&g, 0.0, &mask));
        assert!(result.is_err());
    }

    #[test]
    fn decide_and_merge_compose_into_one_round() {
        // A hand-driven single-shard round: decide into a flat arrival
        // list, merge, and check positions/buckets agree with a naive
        // re-derivation.
        let g = generators::random_regular(24, 4, &mut seeded_rng(1)).unwrap();
        let n = g.node_count();
        let plan = RoundPlan::new(&g, 0.2);
        let mut arena = RoundArena::new();
        // Initial buckets: walker i at node i.
        let mut bucket_starts: Vec<usize> = (0..=n).collect();
        let mut bucket_walkers: Vec<u32> = (0..n as u32).collect();
        let mut positions: Vec<usize> = (0..n).collect();
        let mut sent = vec![0u32; n];
        let mut load = vec![0u32; n];
        let mut rng = seeded_rng(2);
        decide_holder_moves(
            &plan,
            (0..n).map(|u| (u, u)),
            HolderBuckets {
                starts: &bucket_starts,
                walkers: &bucket_walkers,
            },
            &mut sent,
            &mut arena,
            &mut rng,
        );
        let arrivals: Vec<(u32, u32)> = {
            let (dests, walkers) = arena.deliveries();
            dests.iter().copied().zip(walkers.iter().copied()).collect()
        };
        for &(d, w) in &arrivals {
            positions[w as usize] = d as usize;
        }
        assert_eq!(arena.kept_nodes.len() + arrivals.len(), n);
        assert_eq!(
            sent.iter().map(|&s| s as usize).sum::<usize>(),
            arrivals.len()
        );
        merge_round_buckets(
            n,
            &mut arena,
            &mut load,
            &mut bucket_starts,
            &mut bucket_walkers,
            |sink| {
                for &(d, w) in &arrivals {
                    sink(d as usize, w);
                }
            },
        );
        assert_eq!(load.iter().map(|&l| l as usize).sum::<usize>(), n);
        for u in 0..n {
            for &w in &bucket_walkers[bucket_starts[u]..bucket_starts[u + 1]] {
                assert_eq!(positions[w as usize], u);
            }
        }
    }

    #[test]
    fn all_available_mask_is_bitwise_the_unmasked_plan() {
        let g = generators::random_regular(40, 4, &mut seeded_rng(3)).unwrap();
        let mask = vec![true; 40];
        let mut a: Vec<u32> = (0..40).collect();
        let mut b = a.clone();
        let mut rng_a = seeded_rng(4);
        let mut rng_b = seeded_rng(4);
        for _ in 0..10 {
            sweep_walker_order(&RoundPlan::new(&g, 0.3), &mut a, &mut rng_a);
            sweep_walker_order(&RoundPlan::masked(&g, 0.3, &mask), &mut b, &mut rng_b);
        }
        assert_eq!(a, b);
        use rand::Rng;
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn fast_mode_masked_degeneracy_and_consumption_match_unmasked() {
        // All-available mask ≡ unmasked, bitwise, in fast mode too — and
        // both consume exactly one u64 per walker per round.
        let g = generators::random_regular(48, 4, &mut seeded_rng(5)).unwrap();
        let mask = vec![true; 48];
        let mut a: Vec<u32> = (0..48).collect();
        let mut b = a.clone();
        let mut rng_a = seeded_rng(6);
        let mut rng_b = seeded_rng(6);
        let mut reference = seeded_rng(6);
        let mut lane_a = Vec::new();
        let mut lane_b = Vec::new();
        for _ in 0..8 {
            sweep_walker_order_fast(&RoundPlan::new(&g, 0.3), &mut a, &mut lane_a, &mut rng_a);
            sweep_walker_order_fast(
                &RoundPlan::masked(&g, 0.3, &mask),
                &mut b,
                &mut lane_b,
                &mut rng_b,
            );
        }
        assert_eq!(a, b);
        use rand::Rng;
        for _ in 0..8 * 48 {
            reference.gen::<u64>();
        }
        let expect = reference.gen::<u64>();
        assert_eq!(rng_a.gen::<u64>(), expect, "fast sweep over/under-consumed");
        assert_eq!(rng_b.gen::<u64>(), expect, "masked fast sweep diverged");
    }

    #[test]
    fn fast_decide_agrees_with_fast_sweep_on_destinations() {
        // Holder-order fast decide and walker-order fast sweep share the
        // per-walker draw rule; with one walker per node and the holder
        // sweep visiting walkers in node order, round 1 must move walker w
        // to the same destination the sweep computes from the same stream.
        let g = generators::random_regular(32, 4, &mut seeded_rng(7)).unwrap();
        let n = g.node_count();
        let plan = RoundPlan::new(&g, 0.25);
        let mut arena = RoundArena::new();
        let bucket_starts: Vec<usize> = (0..=n).collect();
        let bucket_walkers: Vec<u32> = (0..n as u32).collect();
        let mut sent = vec![0u32; n];
        let mut rng = seeded_rng(8);
        decide_holder_moves_fast(
            &plan,
            (0..n).map(|u| (u, u)),
            HolderBuckets {
                starts: &bucket_starts,
                walkers: &bucket_walkers,
            },
            &mut sent,
            &mut arena,
            &mut rng,
        );
        let mut positions: Vec<u32> = (0..n as u32).collect();
        let mut lane = Vec::new();
        let mut sweep_rng = seeded_rng(8);
        sweep_walker_order_fast(&plan, &mut positions, &mut lane, &mut sweep_rng);
        let (dests, walkers) = arena.deliveries();
        assert_eq!(
            dests.len() + arena.kept_nodes.len(),
            n,
            "every walker survives or is delivered"
        );
        for (&d, &w) in dests.iter().zip(walkers) {
            assert_eq!(positions[w as usize], d);
        }
        for (&lu, &w) in arena.kept_nodes.iter().zip(&arena.kept_walkers) {
            assert_eq!(positions[w as usize], lu, "survivor moved");
            let _ = w;
        }
        assert_eq!(sent.iter().map(|&s| s as usize).sum::<usize>(), dests.len());
    }
}
