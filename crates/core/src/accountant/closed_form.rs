//! Closed-form central-DP guarantees of network shuffling
//! (Theorems 5.3, 5.4, 5.5, 5.6 and 6.1 of the paper).
//!
//! All formulas take `Σ_i P_i^G(t)²` — the sum of squared position
//! probabilities of a report at the reporting time — as an input; how that
//! quantity is obtained (spectral bound vs. exact tracking) is the caller's
//! concern (see [`crate::accountant::graph_accountant`]).
//!
//! A note on Theorem 6.1 as printed: its statement writes
//! `ε₁ = √((n−1) Σ P_i²) + …`, while its own proof (and Theorem 5.3, which
//! it supports) derive `ε₁ = √((1 − 1/n) Σ P_i²) + …` from Lemma 5.1 via
//! `‖L‖₂/n`.  We implement the proof's version, which is also the one that
//! reproduces the paper's numerical figures.

use crate::error::{Error, Result};
use ns_dp::conversion::{approximate_to_pure, union_bound_delta};
use ns_dp::types::PrivacyGuarantee;

/// Parameters shared by all the accounting formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccountantParams {
    /// Number of users `n`.
    pub n: usize,
    /// Pure LDP parameter `ε₀` of the local randomizer.
    pub epsilon_0: f64,
    /// Composition slack `δ` (the `log(1/δ)` terms in the theorems).
    pub delta: f64,
    /// Failure probability `δ₂` of the load-concentration bound (Lemma 5.1).
    pub delta_2: f64,
}

impl AccountantParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] for `n < 2`, non-positive `ε₀`, or
    /// `δ`/`δ₂` outside `(0, 1)`.
    pub fn new(n: usize, epsilon_0: f64, delta: f64, delta_2: f64) -> Result<Self> {
        if n < 2 {
            return Err(Error::InvalidConfiguration(format!(
                "n must be at least 2, got {n}"
            )));
        }
        if !epsilon_0.is_finite() || epsilon_0 <= 0.0 {
            return Err(Error::InvalidConfiguration(format!(
                "epsilon_0 must be positive, got {epsilon_0}"
            )));
        }
        for (name, value) in [("delta", delta), ("delta_2", delta_2)] {
            if !value.is_finite() || value <= 0.0 || value >= 1.0 {
                return Err(Error::InvalidConfiguration(format!(
                    "{name} must be in (0, 1), got {value}"
                )));
            }
        }
        Ok(AccountantParams {
            n,
            epsilon_0,
            delta,
            delta_2,
        })
    }

    /// Convenience constructor with the δ = δ₂ = 10⁻⁶ defaults used by the
    /// paper's numerical section.
    ///
    /// # Errors
    ///
    /// See [`AccountantParams::new`].
    pub fn with_defaults(n: usize, epsilon_0: f64) -> Result<Self> {
        Self::new(n, epsilon_0, 1e-6, 1e-6)
    }
}

fn validate_sum_p_squared(n: usize, sum_p_squared: f64) -> Result<f64> {
    // For a probability vector over n users, 1/n <= sum of squares <= 1.
    if !sum_p_squared.is_finite() || sum_p_squared <= 0.0 || sum_p_squared > 1.0 + 1e-9 {
        return Err(Error::InvalidConfiguration(format!(
            "sum of squared position probabilities must be in (0, 1], got {sum_p_squared}"
        )));
    }
    if sum_p_squared < 1.0 / n as f64 - 1e-9 {
        return Err(Error::InvalidConfiguration(format!(
            "sum of squared position probabilities {sum_p_squared} is below the minimum 1/n"
        )));
    }
    Ok(sum_p_squared.min(1.0))
}

/// The `ε₁` quantity of Theorems 5.3/5.4: the high-probability bound on
/// `‖L‖₂ / n` from Lemma 5.1 (optionally inflated by the support ratio `ρ*`
/// of the symmetric analysis).
fn epsilon_1(params: &AccountantParams, sum_p_squared: f64, rho_star: f64) -> f64 {
    let n = params.n as f64;
    ((1.0 - 1.0 / n) * rho_star * rho_star * sum_p_squared).sqrt()
        + ((1.0 / params.delta_2).ln() / n).sqrt()
}

/// Shared body of Theorems 5.3 and 5.4 at a given pure LDP level `ε₀`.
fn all_protocol_epsilon_at(
    epsilon_0: f64,
    params: &AccountantParams,
    sum_p_squared: f64,
    rho_star: f64,
) -> f64 {
    let eps1 = epsilon_1(params, sum_p_squared, rho_star);
    let amplification = (epsilon_0.exp() - 1.0).powi(2) * (4.0 * epsilon_0).exp();
    amplification * eps1 * eps1 / 2.0
        + eps1 * (2.0 * amplification * (1.0 / params.delta).ln()).sqrt()
}

/// Shared body of Theorems 5.5 and 5.6 at a given pure LDP level `ε₀`.
fn single_protocol_epsilon_at(
    epsilon_0: f64,
    params: &AccountantParams,
    sum_p_squared: f64,
) -> f64 {
    let e = epsilon_0.exp();
    (2.0 * epsilon_0).exp() * (e - 1.0).powi(2) / 2.0 * sum_p_squared
        + e * (e - 1.0) * (2.0 * (1.0 / params.delta).ln() * sum_p_squared).sqrt()
}

/// Theorem 5.3 / 5.4 (protocol `A_all`).
///
/// * Stationary scenario (Theorem 5.3): pass `rho_star = 1.0` and the Eq. 7
///   bound on `Σ_i P_i²`.
/// * Symmetric scenario (Theorem 5.4): pass the exact `Σ_i P_i(t)²` of the
///   tracked position distribution and its support ratio `ρ*`.
///
/// Returns the `(ε, δ + δ₂)` central guarantee.
///
/// # Errors
///
/// [`Error::InvalidConfiguration`] on out-of-range inputs.
pub fn all_protocol_epsilon(
    params: &AccountantParams,
    sum_p_squared: f64,
    rho_star: f64,
) -> Result<PrivacyGuarantee> {
    let sum_p_squared = validate_sum_p_squared(params.n, sum_p_squared)?;
    if !rho_star.is_finite() || rho_star < 1.0 {
        return Err(Error::InvalidConfiguration(format!(
            "support ratio rho* must be >= 1, got {rho_star}"
        )));
    }
    let epsilon = all_protocol_epsilon_at(params.epsilon_0, params, sum_p_squared, rho_star);
    Ok(PrivacyGuarantee::new(
        epsilon,
        params.delta + params.delta_2,
    )?)
}

/// Theorem 5.5 / 5.6 (protocol `A_single`).
///
/// The same closed form covers the stationary scenario (with the Eq. 7 bound
/// on `Σ_i P_i²`) and the symmetric scenario (with the exact value).
/// Returns the `(ε, δ)` central guarantee.
///
/// # Errors
///
/// [`Error::InvalidConfiguration`] on out-of-range inputs.
pub fn single_protocol_epsilon(
    params: &AccountantParams,
    sum_p_squared: f64,
) -> Result<PrivacyGuarantee> {
    let sum_p_squared = validate_sum_p_squared(params.n, sum_p_squared)?;
    let epsilon = single_protocol_epsilon_at(params.epsilon_0, params, sum_p_squared);
    Ok(PrivacyGuarantee::new(epsilon, params.delta)?)
}

/// Approximate-DP corollary of Theorems 5.3/5.4: the local randomizer is
/// `(ε₀, δ₀)`-DP, which Lemma 5.2 converts into an `8ε₀`-pure surrogate at
/// total-variation distance `δ₁`, yielding
/// `(ε', δ + δ₂ + n (e^{ε'} + 1) δ₁)` with `ε'` the pure formula at `8ε₀`.
///
/// # Errors
///
/// Fails if `δ₀` exceeds the Lemma 5.2 threshold or any parameter is out of
/// range.
pub fn all_protocol_epsilon_approx(
    params: &AccountantParams,
    sum_p_squared: f64,
    rho_star: f64,
    delta_0: f64,
    delta_1: f64,
) -> Result<PrivacyGuarantee> {
    let sum_p_squared = validate_sum_p_squared(params.n, sum_p_squared)?;
    if !rho_star.is_finite() || rho_star < 1.0 {
        return Err(Error::InvalidConfiguration(format!(
            "support ratio rho* must be >= 1, got {rho_star}"
        )));
    }
    let surrogate = approximate_to_pure(params.epsilon_0, delta_0, delta_1)?;
    let epsilon_prime = all_protocol_epsilon_at(surrogate.epsilon, params, sum_p_squared, rho_star);
    let delta_prime = params.delta
        + params.delta_2
        + union_bound_delta(params.n, epsilon_prime, surrogate.tv_distance);
    Ok(PrivacyGuarantee::new(
        epsilon_prime,
        delta_prime.min(1.0 - f64::EPSILON),
    )?)
}

/// Approximate-DP corollary of Theorems 5.5/5.6 for protocol `A_single`.
///
/// # Errors
///
/// Same as [`all_protocol_epsilon_approx`].
pub fn single_protocol_epsilon_approx(
    params: &AccountantParams,
    sum_p_squared: f64,
    delta_0: f64,
    delta_1: f64,
) -> Result<PrivacyGuarantee> {
    let sum_p_squared = validate_sum_p_squared(params.n, sum_p_squared)?;
    let surrogate = approximate_to_pure(params.epsilon_0, delta_0, delta_1)?;
    let epsilon_prime = single_protocol_epsilon_at(surrogate.epsilon, params, sum_p_squared);
    let delta_prime = params.delta
        + params.delta_2
        + union_bound_delta(params.n, epsilon_prime, surrogate.tv_distance);
    Ok(PrivacyGuarantee::new(
        epsilon_prime,
        delta_prime.min(1.0 - f64::EPSILON),
    )?)
}

/// The trivial central guarantee `(ε₀, 0)` that holds with no amplification
/// at all (every ε₀-LDP collection is ε₀-DP centrally).  Useful as the
/// fallback when the amplified bound exceeds ε₀, e.g. for very small graphs.
pub fn ldp_fallback(params: &AccountantParams) -> PrivacyGuarantee {
    PrivacyGuarantee::pure(params.epsilon_0).expect("validated at construction")
}

/// The tighter of the amplified guarantee and the LDP fallback, compared on
/// ε (the fallback has δ = 0, so it dominates whenever its ε is smaller).
pub fn best_of(amplified: PrivacyGuarantee, params: &AccountantParams) -> PrivacyGuarantee {
    let fallback = ldp_fallback(params);
    if fallback.epsilon <= amplified.epsilon {
        fallback
    } else {
        amplified
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, eps0: f64) -> AccountantParams {
        AccountantParams::with_defaults(n, eps0).unwrap()
    }

    #[test]
    fn parameter_validation() {
        assert!(AccountantParams::new(1, 1.0, 1e-6, 1e-6).is_err());
        assert!(AccountantParams::new(10, 0.0, 1e-6, 1e-6).is_err());
        assert!(AccountantParams::new(10, 1.0, 0.0, 1e-6).is_err());
        assert!(AccountantParams::new(10, 1.0, 1e-6, 1.0).is_err());
        assert!(AccountantParams::new(10, 1.0, 1e-6, 1e-6).is_ok());
    }

    #[test]
    fn sum_p_squared_validation() {
        let p = params(100, 1.0);
        assert!(all_protocol_epsilon(&p, 0.0, 1.0).is_err());
        assert!(all_protocol_epsilon(&p, 1.5, 1.0).is_err());
        // Below 1/n is impossible for a probability vector.
        assert!(all_protocol_epsilon(&p, 0.001, 1.0).is_err());
        assert!(all_protocol_epsilon(&p, 0.02, 1.0).is_ok());
        assert!(all_protocol_epsilon(&p, 0.02, 0.5).is_err());
        assert!(single_protocol_epsilon(&p, f64::NAN).is_err());
    }

    #[test]
    fn single_protocol_matches_hand_computation() {
        // n = 10_000, eps0 = 1, sum P^2 = 10 / n (Gamma = 10), delta = 1e-6.
        let p = params(10_000, 1.0);
        let s = 10.0 / 10_000.0;
        let e = 1.0f64.exp();
        let expected = (2.0f64).exp() * (e - 1.0).powi(2) / 2.0 * s
            + e * (e - 1.0) * (2.0 * (1e6f64).ln() * s).sqrt();
        let got = single_protocol_epsilon(&p, s).unwrap();
        assert!((got.epsilon - expected).abs() < 1e-12);
        assert!((got.delta - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn all_protocol_matches_hand_computation() {
        let p = params(10_000, 0.5);
        let s = 2.0 / 10_000.0;
        let n = 10_000f64;
        let eps1 = ((1.0 - 1.0 / n) * s).sqrt() + ((1e6f64).ln() / n).sqrt();
        let a = (0.5f64.exp() - 1.0).powi(2) * (2.0f64).exp();
        let expected = a * eps1 * eps1 / 2.0 + eps1 * (2.0 * a * (1e6f64).ln()).sqrt();
        let got = all_protocol_epsilon(&p, s, 1.0).unwrap();
        assert!((got.epsilon - expected).abs() < 1e-12);
        assert!((got.delta - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn amplification_improves_with_population_and_mixing() {
        // Larger n (smaller sum P^2) gives a smaller central epsilon.
        let eps0 = 0.5;
        let small = single_protocol_epsilon(&params(1_000, eps0), 1.0 / 1_000.0).unwrap();
        let large = single_protocol_epsilon(&params(1_000_000, eps0), 1.0 / 1_000_000.0).unwrap();
        assert!(large.epsilon < small.epsilon);

        // A less-mixed distribution (larger sum P^2) gives a larger epsilon.
        let p = params(100_000, eps0);
        let mixed = all_protocol_epsilon(&p, 1.0 / 100_000.0, 1.0).unwrap();
        let unmixed = all_protocol_epsilon(&p, 0.01, 1.0).unwrap();
        assert!(mixed.epsilon < unmixed.epsilon);
    }

    #[test]
    fn single_beats_all_at_large_epsilon0() {
        // Figure 7's qualitative claim: at large eps0 the A_single bound is
        // smaller than the A_all bound.
        let p = params(100_000, 3.0);
        let s = 5.0 / 100_000.0;
        let all = all_protocol_epsilon(&p, s, 1.0).unwrap();
        let single = single_protocol_epsilon(&p, s).unwrap();
        assert!(
            single.epsilon < all.epsilon,
            "single {} vs all {}",
            single.epsilon,
            all.epsilon
        );
    }

    #[test]
    fn rho_star_only_penalizes_the_all_protocol() {
        let p = params(50_000, 1.0);
        let s = 3.0 / 50_000.0;
        let base = all_protocol_epsilon(&p, s, 1.0).unwrap();
        let skewed = all_protocol_epsilon(&p, s, 2.0).unwrap();
        assert!(skewed.epsilon > base.epsilon);
    }

    #[test]
    fn approx_variants_pay_in_epsilon_and_delta() {
        let p = params(100_000, 0.25);
        let s = 2.0 / 100_000.0;
        let pure = all_protocol_epsilon(&p, s, 1.0).unwrap();
        let delta_1 = 1e-12;
        let threshold = ns_dp::conversion::delta0_threshold(0.25, delta_1).unwrap();
        let approx = all_protocol_epsilon_approx(&p, s, 1.0, threshold / 2.0, delta_1).unwrap();
        assert!(approx.epsilon > pure.epsilon);
        assert!(approx.delta > pure.delta);
        // Too-large delta_0 is rejected.
        assert!(all_protocol_epsilon_approx(&p, s, 1.0, threshold * 10.0, delta_1).is_err());

        let single_pure = single_protocol_epsilon(&p, s).unwrap();
        let single_approx =
            single_protocol_epsilon_approx(&p, s, threshold / 2.0, delta_1).unwrap();
        assert!(single_approx.epsilon > single_pure.epsilon);
    }

    #[test]
    fn fallback_picks_the_tighter_guarantee() {
        let p = params(100, 2.0);
        // Tiny population: the amplified bound is worse than eps0.
        let amplified = all_protocol_epsilon(&p, 1.0 / 100.0, 1.0).unwrap();
        assert!(amplified.epsilon > 2.0);
        let best = best_of(amplified, &p);
        assert_eq!(best.epsilon, 2.0);
        assert!(best.is_pure());

        // Huge population: amplification wins.
        let p = params(1_000_000, 0.5);
        let amplified = single_protocol_epsilon(&p, 1.0 / 1_000_000.0).unwrap();
        let best = best_of(amplified, &p);
        assert!(best.epsilon < 0.5);
    }
}
