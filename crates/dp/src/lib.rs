//! Differential-privacy substrate for the network-shuffling reproduction.
//!
//! Network shuffling amplifies the *local* differential-privacy guarantee of
//! each user's randomized report into a much stronger *central* guarantee.
//! This crate provides everything below that amplification step:
//!
//! * core `(ε, δ)` types and validation ([`types`]),
//! * the local-randomizer abstraction and concrete mechanisms — k-ary
//!   randomized response, Laplace, Gaussian and PrivUnit ([`randomizer`],
//!   [`mechanisms`]),
//! * unbiased aggregate estimators for the randomized reports
//!   ([`estimators`]),
//! * composition theorems, including the heterogeneous advanced composition
//!   of Kairouz–Oh–Viswanath used in the paper's Eq. 6 ([`composition`]),
//! * the privacy-amplification baselines of Table 1: subsampling, uniform
//!   shuffling (Erlingsson et al.) and uniform shuffling with clones
//!   (Feldman et al.) ([`amplification`]),
//! * the approximate-DP → pure-DP reduction of Lemma 5.2 ([`conversion`]).
//!
//! The network-shuffling amplification theorems themselves (Theorems 5.3–5.6)
//! live in the `network-shuffle` crate, because they additionally depend on
//! the graph substrate.
//!
//! # Example
//!
//! ```
//! use ns_dp::mechanisms::RandomizedResponse;
//! use ns_dp::randomizer::LocalRandomizer;
//!
//! let rr = RandomizedResponse::new(4, 1.0).unwrap();
//! let mut rng = ns_dp::rng::seeded_rng(1);
//! let noisy = rr.randomize(&2, &mut rng).unwrap();
//! assert!(noisy < 4);
//! assert!((rr.epsilon() - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amplification;
pub mod composition;
pub mod conversion;
pub mod estimators;
pub mod ledger;
pub mod mechanisms;
pub mod randomizer;
pub mod rng;
pub mod types;

pub use randomizer::LocalRandomizer;
pub use types::{DpError, PrivacyGuarantee, Result};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::amplification::{
        clones_shuffling_epsilon, erlingsson_shuffling_epsilon, subsampling_epsilon,
    };
    pub use crate::composition::{
        advanced_composition, basic_composition, heterogeneous_advanced_composition,
    };
    pub use crate::conversion::{approximate_to_pure, delta0_threshold};
    pub use crate::ledger::BudgetLedger;
    pub use crate::mechanisms::{Gaussian, Laplace, PrivUnit, RandomizedResponse};
    pub use crate::randomizer::LocalRandomizer;
    pub use crate::types::{DpError, PrivacyGuarantee, Result};
}
