//! Shard-count sweep of the sharded mixing engine at fixed population,
//! plus a steady-state allocation audit of the unified round kernel.
//!
//! Measures the cost of one exchange-round budget (engine construction plus
//! `ROUNDS` holder-order rounds) as the shard count grows at `n = 100_000`:
//! the sequential sweep isolates the overhead of the per-shard sampling
//! phase plus the counting-sort exchange versus the monolithic engine
//! (`k = 1` is bit-for-bit the single-engine path).  With
//! `--features parallel` the same sweep exercises the threaded sampling
//! phase instead.
//!
//! Before the criterion sweep, a counting global allocator audits the
//! kernel's arena contract: after a short warm-up, monolithic, sharded and
//! masked-sharded rounds must perform **zero** heap allocations per round —
//! all counting-sort and outbox scratch lives in reusable arenas owned by
//! the plan executors.  (The audit runs on the benchmark binary only; the
//! engines themselves are allocator-agnostic.)

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use ns_graph::generators::random_regular;
use ns_graph::mixing_engine::MixingEngine;
use ns_graph::partition::Partition;
use ns_graph::rng::seeded_rng;
use ns_graph::round::DrawMode;
use ns_graph::sharded_engine::ShardedMixingEngine;
use ns_graph::telemetry::EngineTelemetry;
use ns_obs::MetricsRegistry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

const USERS: usize = 100_000;
const DEGREE: usize = 8;
const ROUNDS: usize = 10;

/// A pass-through allocator that counts allocations, for the steady-state
/// audit.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// Audited pass-through to the system allocator: the only added behaviour
// is the relaxed counter bump.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Warms an engine until a whole block of rounds allocates nothing, then
/// returns the allocation count of a final audited block (which the caller
/// asserts is zero).  The kernel's arenas and the exchange outboxes grow
/// monotonically to their high-water marks — bounded by the walker count,
/// so the number of growth events is finite — and a later round can only
/// allocate if it breaks a high-water mark; warm-up length is therefore
/// workload-dependent, and the audit warms adaptively instead of guessing.
fn settle_then_audit(label: &str, mut round: impl FnMut()) -> usize {
    const BLOCK: usize = 10;
    const MAX_BLOCKS: usize = 50;
    for _ in 0..MAX_BLOCKS {
        let during_warmup = allocations_during(|| {
            for _ in 0..BLOCK {
                round();
            }
        });
        if during_warmup == 0 {
            break;
        }
    }
    let audited = allocations_during(|| {
        for _ in 0..BLOCK {
            round();
        }
    });
    println!("steady-state allocations over {BLOCK} rounds [{label}]: {audited}");
    audited
}

/// Steady-state rounds must allocate nothing — in *both* draw modes: the
/// `fast` lane buffer is arena scratch like everything else, growing once
/// to its high-water mark and then recycled.
fn audit_steady_state_allocations() {
    let n = 20_000;
    let graph = random_regular(n, DEGREE, &mut seeded_rng(3)).expect("graph");
    let partition = Partition::new(&graph, 4).expect("partition");
    let mask: Vec<bool> = (0..n).map(|u| u % 5 != 0).collect();

    for mode in [DrawMode::Compat, DrawMode::Fast] {
        let tag = match mode {
            DrawMode::Compat => "compat",
            DrawMode::Fast => "fast",
        };
        let mut engine = MixingEngine::one_walker_per_node(&graph).expect("engine");
        engine.set_draw_mode(mode);
        let mut rng = seeded_rng(4);
        let single = settle_then_audit(&format!("monolithic {tag}"), || {
            engine.step_holder(0.2, &mut rng, &mut ());
        });

        let mut sharded =
            ShardedMixingEngine::one_walker_per_node(&graph, &partition, 5).expect("engine");
        sharded.set_draw_mode(mode);
        let multi = settle_then_audit(&format!("sharded k=4 {tag}"), || {
            sharded.step(0.2, &mut ());
        });

        let masked = settle_then_audit(&format!("sharded k=4 + mask {tag}"), || {
            sharded.step_masked(0.2, &mask, &mut ());
        });

        // The telemetry layer rides the same contract: span timers,
        // counters and histograms record into preregistered slots, so
        // re-auditing the settled engines with a live registry attached
        // must stay at zero too.
        let registry = MetricsRegistry::new();
        engine.set_telemetry(Some(EngineTelemetry::register(&registry)));
        let single_obs = settle_then_audit(&format!("monolithic {tag} + telemetry"), || {
            engine.step_holder(0.2, &mut rng, &mut ());
        });
        sharded.set_telemetry(Some(EngineTelemetry::register(&registry)));
        let multi_obs = settle_then_audit(&format!("sharded k=4 {tag} + telemetry"), || {
            sharded.step(0.2, &mut ());
        });
        let masked_obs =
            settle_then_audit(&format!("sharded k=4 + mask {tag} + telemetry"), || {
                sharded.step_masked(0.2, &mask, &mut ());
            });

        // The arena contract of ns_graph::round: settled rounds allocate
        // nothing.  (Threaded rounds spawn scoped threads per step; thread
        // stacks are runtime plumbing, not per-round engine allocations, so
        // the audit runs the sequential forms.)
        assert_eq!(
            single, 0,
            "monolithic {tag} steady-state rounds must not allocate"
        );
        assert_eq!(
            multi, 0,
            "sharded {tag} steady-state rounds must not allocate"
        );
        assert_eq!(
            masked, 0,
            "masked sharded {tag} steady-state rounds must not allocate"
        );
        assert_eq!(
            single_obs, 0,
            "instrumented monolithic {tag} steady-state rounds must not allocate"
        );
        assert_eq!(
            multi_obs, 0,
            "instrumented sharded {tag} steady-state rounds must not allocate"
        );
        assert_eq!(
            masked_obs, 0,
            "instrumented masked sharded {tag} steady-state rounds must not allocate"
        );
        // The registry really saw the audited rounds (render is off-audit).
        assert!(registry.render().contains("counter ns_rounds_total"));
        black_box(sharded.position(0));
    }

    audit_migration_allocations(&graph, &partition);
    audit_delta_allocations(&graph);
    audit_durable_allocations(&graph, &partition);

    #[cfg(feature = "parallel")]
    audit_pipelined_allocations(&graph, &partition);
}

/// The online-repartitioning exchange is arena scratch too: once the
/// per-shard buffers have hit their high-water marks for every partition
/// shape in rotation, a `migrate_borrowed_into` + round cycle allocates
/// nothing.  (The owned entry points box the incoming partition by design —
/// that box is the caller's hand-off, not per-migration engine scratch.)
fn audit_migration_allocations(graph: &ns_graph::Graph, partition: &Partition) {
    let n = graph.node_count();
    // A second shape: rotate a band of nodes one shard over.
    let shifted: Vec<u32> = (0..n)
        .map(|u| {
            let s = partition.shard_of(u);
            if u % 7 == 0 {
                ((s + 1) % partition.shard_count()) as u32
            } else {
                s as u32
            }
        })
        .collect();
    let other =
        Partition::from_assignment(graph, partition.shard_count(), shifted).expect("partition");
    let mut engine = ShardedMixingEngine::one_walker_per_node(graph, partition, 8).expect("engine");
    let mut movers = Vec::new();
    let mut flip = false;
    // Pre-warm past the high-water ratchet: per-shard bucket sizes keep
    // setting records while the walk redistributes, so a lucky early
    // zero-allocation block does not yet mean the buffers are settled.
    for _ in 0..100 {
        flip = !flip;
        let next = if flip { &other } else { partition };
        engine
            .migrate_borrowed_into(next, &mut movers)
            .expect("migrate");
        engine.step(0.2, &mut ());
    }
    let audited = settle_then_audit("migrate + round k=4", || {
        flip = !flip;
        let next = if flip { &other } else { partition };
        engine
            .migrate_borrowed_into(next, &mut movers)
            .expect("migrate");
        engine.step(0.2, &mut ());
    });
    assert_eq!(
        audited, 0,
        "steady-state migrations must not allocate once buffers are warm"
    );
    black_box(engine.position(0));
}

/// The delta runtime's critical path — affected-column derivation plus the
/// per-column ensemble correction — is allocation-free once its buffers are
/// warm.  (The speculative advance runs off the critical path and uses the
/// dense kernel's per-call scratch, so it is not part of this audit.)
fn audit_delta_allocations(graph: &ns_graph::Graph) {
    use ns_graph::delta::affected_columns_into;
    use ns_graph::dynamic::DynamicGraph;
    use ns_graph::ensemble::DistributionEnsemble;

    let n = graph.node_count();
    let mut dg = DynamicGraph::from_graph(graph).expect("dynamic");
    let operator = dg.masked_operator(0.2).expect("operator");
    let origins: Vec<usize> = (0..32).map(|r| r * (n / 32)).collect();
    let mut ensemble = DistributionEnsemble::point_masses(n, &origins).expect("ensemble");
    let mut prev = Vec::new();
    let mut prev_il = Vec::new();
    ensemble.speculate_interleaved(&operator, &mut prev, &mut prev_il);
    let touched: Vec<usize> = (0..n).step_by(97).collect();
    let mut stamp = vec![false; n];
    let mut columns = Vec::new();
    let snapshot = dg.snapshot().clone();
    let audited = settle_then_audit("delta correction 32 rows", || {
        affected_columns_into(&snapshot, &touched, &mut stamp, &mut columns);
        ensemble.correct_columns_interleaved(&operator, &columns, &prev_il);
        ensemble.correct_columns(&operator, &columns, &prev);
    });
    assert_eq!(
        audited, 0,
        "the delta critical path must not allocate once buffers are warm"
    );
    black_box(ensemble.row(0)[0]);
}

/// The durable wrapper's append path honors the arena contract too: with
/// snapshots disabled, a settled [`DurableCoordinator`] adds **zero**
/// steady-state allocations per round over the plain coordinator it wraps —
/// the round record encodes into a reused scratch buffer, the RNG clocks
/// stage into a reused vector, and the WAL writes through a fixed tail
/// page.  The coordinator itself pays a small per-round cost (the
/// accountant's dense advance uses per-call scratch, deliberately off this
/// contract), so the audit is *marginal*: identical twin runs, one plain
/// and one durable, must allocate exactly the same.  (Snapshot boundaries
/// allocate by design — a full checkpoint is materialized and written
/// atomically — so the audit excludes them with `snapshot_every: 0`,
/// exactly the boundary the contract carves out.)
///
/// The durable twin runs **fully instrumented** — WAL latency spans, phase
/// counters, per-round trace events into the preallocated ring, the live
/// (ε, δ) quote per round — so this is also the telemetry-on audit of the
/// durable path: the whole observability layer must stay inside the
/// zero-marginal-allocation envelope.
fn audit_durable_allocations(graph: &ns_graph::Graph, partition: &Partition) {
    use network_shuffle::prelude::{AccountantParams, CoordinatorConfig, ShuffleCoordinator};
    use ns_store::prelude::{DurableConfig, DurableCoordinator};

    const BLOCK: usize = 10;
    const WARMUP: usize = 30;
    let dir = std::env::temp_dir().join("ns_sharded_mixing_durable_audit");
    let _ = std::fs::remove_dir_all(&dir);
    let n = graph.node_count();
    let config = CoordinatorConfig::all(17, 8);
    let payloads = || (0..n).map(|i| vec![i as u8, (i >> 8) as u8]).collect();

    let mut plain: ShuffleCoordinator<'_, Vec<u8>> =
        ShuffleCoordinator::new(graph, partition, config).expect("coordinator");
    plain.admit_population(payloads()).expect("admit");
    plain.begin_exchange().expect("begin");

    let durable = DurableConfig {
        group_commit: 4,
        snapshot_every: 0,
    };
    let mut store =
        DurableCoordinator::create(graph, partition, config, durable, &dir).expect("store");
    let registry = MetricsRegistry::new();
    let params = AccountantParams::new(n, 1.0, 1e-6, 1e-6).expect("params");
    store.attach_telemetry(&registry, Some(params));
    store.admit_population(payloads()).expect("admit");
    store.begin_exchange().expect("begin");

    // Both twins run the identical deterministic trajectory; settle their
    // arenas and the WAL tail page to the high-water marks.
    for _ in 0..WARMUP {
        plain.run_rounds(1).expect("round");
        store.run_rounds(1).expect("round");
    }
    let plain_cost = allocations_during(|| {
        for _ in 0..BLOCK {
            plain.run_rounds(1).expect("round");
        }
    });
    let durable_cost = allocations_during(|| {
        for _ in 0..BLOCK {
            store.run_rounds(1).expect("round");
        }
    });
    println!(
        "steady-state allocations over {BLOCK} rounds [plain k=4]: {plain_cost}, \
         [durable k=4 + telemetry]: {durable_cost}"
    );
    assert_eq!(
        durable_cost, plain_cost,
        "the instrumented durable wrapper must add zero steady-state allocations \
         per round outside snapshot boundaries"
    );
    black_box((plain.round(), store.round()));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The pipelined exchange allocates per *call* (the alternate outbox buffer
/// and the scoped worker threads), never per *round*: doubling the round
/// count of a settled engine must add zero allocations.
#[cfg(feature = "parallel")]
fn audit_pipelined_allocations(graph: &ns_graph::Graph, partition: &Partition) {
    for mode in [DrawMode::Compat, DrawMode::Fast] {
        let tag = match mode {
            DrawMode::Compat => "compat",
            DrawMode::Fast => "fast",
        };
        let mut engine =
            ShardedMixingEngine::one_walker_per_node(graph, partition, 6).expect("engine");
        engine.set_draw_mode(mode);
        // Settle arenas and outboxes to their high-water marks.  The marks
        // are workload-dependent (walkers redistribute every round), so
        // settle adaptively like `settle_then_audit` does: keep running
        // until a longer call stops allocating more than a shorter one.
        engine.run_pipelined(0.2, 20);
        let mut marginal = usize::MAX;
        for _ in 0..50 {
            let short = allocations_during(|| engine.run_pipelined(0.2, 10));
            let long = allocations_during(|| engine.run_pipelined(0.2, 20));
            marginal = long.saturating_sub(short);
            if marginal == 0 {
                break;
            }
        }
        println!("pipelined marginal allocations over 10 extra rounds [{tag}]: {marginal}");
        assert_eq!(
            marginal, 0,
            "pipelined {tag} rounds must not allocate beyond the per-call setup"
        );
        black_box(engine.position(0));
    }
}

fn bench_shard_count_sweep(c: &mut Criterion) {
    let graph = random_regular(USERS, DEGREE, &mut seeded_rng(1)).expect("graph");
    let mut group = c.benchmark_group("sharded_mixing_100k");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let partition = Partition::new(&graph, shards).expect("partition");
        group.bench_with_input(
            BenchmarkId::new("rounds", shards),
            &partition,
            |b, partition| {
                b.iter(|| {
                    let mut engine = ShardedMixingEngine::one_walker_per_node(&graph, partition, 7)
                        .expect("engine");
                    for _ in 0..ROUNDS {
                        engine.step_auto(0.0, &mut ());
                    }
                    black_box(engine.position(0))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_count_sweep);

fn main() {
    audit_steady_state_allocations();
    benches();
}
