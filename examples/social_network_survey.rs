//! A survey over a realistic social network (the Twitch stand-in dataset).
//!
//! ```text
//! cargo run --release --example social_network_survey
//! ```
//!
//! Scenario from the paper's introduction: a messaging-app provider wants to
//! survey its users without a trusted shuffler.  Users randomize their answer
//! locally and relay reports along their social connections.  The example
//! compares the `A_all` and `A_single` protocols on the same network: the
//! central ε each achieves, and the survey accuracy each delivers.

use network_shuffle::prelude::*;
use ns_datasets::Dataset;
use ns_dp::estimators::estimate_frequencies;
use ns_dp::mechanisms::RandomizedResponse;
use ns_obs::say;

const TOPIC: &str = "social_network_survey";

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let epsilon_0 = 2.0;
    let categories = 5;
    let seed = 7;

    // The Twitch stand-in, scaled down 4x so the example runs in seconds.
    let generated = Dataset::Twitch.generate_scaled(4, seed)?;
    let graph = &generated.graph;
    let n = graph.node_count();
    say!(
        TOPIC,
        "{} stand-in: n = {n}, Gamma_G = {:.2} (paper target {:.2})",
        generated.spec.name,
        generated.achieved.irregularity,
        generated.spec.irregularity
    );

    // Ground truth: answers follow a Zipf-ish distribution.
    let truth: Vec<usize> = (0..n)
        .map(|i| match i % 100 {
            0..=49 => 0,
            50..=74 => 1,
            75..=89 => 2,
            90..=97 => 3,
            _ => 4,
        })
        .collect();
    let true_freq: Vec<f64> = (0..categories)
        .map(|c| truth.iter().filter(|&&t| t == c).count() as f64 / n as f64)
        .collect();
    let randomizer = RandomizedResponse::new(categories, epsilon_0)?;

    let accountant = NetworkShuffleAccountant::new(graph)?;
    let rounds = accountant.mixing_time();
    let params = AccountantParams::with_defaults(n, epsilon_0)?;
    say!(TOPIC, "running {rounds} exchange rounds (mixing time)\n");

    for protocol in [ProtocolKind::All, ProtocolKind::Single] {
        let config = SimulationConfig {
            rounds,
            laziness: 0.0,
            protocol,
            seed,
        };
        let outcome = run_protocol_with_randomizer(graph, &truth, &randomizer, config, &0usize)?;

        let reports: Vec<usize> = outcome
            .collected
            .all_payloads()
            .into_iter()
            .copied()
            .collect();
        let estimate = estimate_frequencies(&randomizer, &reports)?;
        let l1_error: f64 = estimate
            .iter()
            .zip(true_freq.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();

        let central =
            accountant.central_guarantee(protocol, Scenario::Stationary, &params, rounds)?;
        let dummies = outcome.collected.dummy_count();

        say!(TOPIC, "protocol {protocol}:");
        say!(
            TOPIC,
            "  reports at curator: {} ({} dummies)",
            outcome.collected.report_count(),
            dummies
        );
        say!(
            TOPIC,
            "  central guarantee:  {central}  (local was {epsilon_0}-LDP)"
        );
        say!(TOPIC, "  survey L1 error:    {l1_error:.4}");
        println!();
    }

    say!(
        TOPIC,
        "note: A_single trades some utility (dummies, dropped reports) for a"
    );
    say!(
        TOPIC,
        "tighter central epsilon at large epsilon_0 — compare the two blocks above."
    );
    Ok(())
}
