//! Multi-shard execution of exchange rounds with deterministic RNG splitting.
//!
//! [`ShardedMixingEngine`] runs the unified holder-order round kernel
//! ([`crate::round`]) independently per shard of a
//! [`crate::partition::Partition`], then routes cross-shard deliveries
//! through per-shard outboxes with one counting-sort exchange phase per
//! round.  Because the per-shard decide sweep *is* the kernel's
//! [`crate::round::decide_holder_moves`], every scenario axis the kernel
//! supports composes here: masked rounds
//! ([`ShardedMixingEngine::step_masked`] — a delivery to an unavailable
//! recipient bounces back through the return exchange and rejoins its
//! holder as a survivor) and live topology churn
//! ([`ShardedMixingEngine::retarget`]) run through the same loop as the
//! static rounds, not through divergent copies.  The design contracts:
//!
//! * **Seed-only determinism.**  Shard `s` draws from its own ChaCha8 stream
//!   ([`shard_stream`]), and a round's result depends only on
//!   `(seed, partition, starts)` — never on the order shards were executed
//!   in ([`ShardedMixingEngine::step_in_order`] is the audit hook) nor, under
//!   the `parallel` feature, on how many threads ran them
//!   (`ShardedMixingEngine::step_threaded`).
//! * **Canonical merge order.**  After the per-shard sampling phase, each
//!   node's next-round bucket lists its survivors first (in previous bucket
//!   order) and then its arrivals grouped by *source shard id* in ascending
//!   order, each group in that shard's send order.  This is a fixed function
//!   of the per-shard draws, which is what makes the exchange phase
//!   execution-order-free.
//! * **1-shard degeneracy.**  Under [`crate::partition::Partition::single_shard`]
//!   the engine is **bit for bit** the single
//!   [`MixingEngine`](crate::mixing_engine::MixingEngine) holder-order
//!   path: [`shard_stream`]`(seed, 0)` is exactly
//!   `SimRng::seed_from_u64(seed)`, the sampling sweep visits the same
//!   nodes and walkers in the same order drawing through the same
//!   [`crate::mixing_engine`] sampling rule, and the merge degenerates to the
//!   engine's counting sort — positions, bucket orders, per-round
//!   sent/load statistics and the RNG stream itself all coincide
//!   (`tests/sharded_engine.rs`).  For `k > 1` the split streams are a
//!   *different but equally distributed* realization of the same walk.
//!
//! Shards share the one immutable global CSR for neighbour sampling — this
//! is a single-box, multi-core runtime; the per-shard CSRs and frontier
//! tables carried by the [`Partition`] describe what each shard would have
//! to hold in a distributed deployment.

use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};
use crate::mixing_engine::{RoundObserver, RoundStats};
use crate::partition::Partition;
use crate::rng::{mix64, SimRng};
use crate::round::{self, DrawMode, RoundArena, RoundPlan};
use crate::telemetry::EngineTelemetry;
use crate::walk::WalkConfig;
use rand_chacha::rand_core::SeedableRng;

/// The deterministic RNG stream of shard `shard` under `seed`.
///
/// Shard 0 inherits the base stream `SimRng::seed_from_u64(seed)` — so the
/// canonical 1-shard engine consumes exactly the stream the single-engine
/// path would — and every further shard gets a SplitMix64-decorrelated
/// stream of its own.
pub fn shard_stream(seed: u64, shard: usize) -> SimRng {
    if shard == 0 {
        SimRng::seed_from_u64(seed)
    } else {
        SimRng::seed_from_u64(mix64(mix64(seed) ^ shard as u64))
    }
}

/// Per-shard mutable state: the shard's walker buckets, RNG stream and
/// round scratch.  Walker ids are global; node ids inside the buckets are
/// shard-local.
#[derive(Debug, Clone)]
struct ShardState {
    rng: SimRng,
    /// CSR buckets over local nodes: walkers held by local node `lu` are
    /// `bucket_walkers[bucket_starts[lu]..bucket_starts[lu + 1]]`.
    bucket_starts: Vec<usize>,
    bucket_walkers: Vec<u32>,
    /// The kernel's counting-sort scratch, reused across rounds.
    arena: RoundArena,
    sent_local: Vec<u32>,
    load_local: Vec<u32>,
}

/// One shard's captured state inside an [`EngineCheckpoint`]: the exact
/// ChaCha8 stream position plus the shard's walker buckets.
///
/// Bucket CSRs must be captured, not rebuilt: a running engine's bucket
/// order is history-dependent (survivors first, then arrivals grouped by
/// source shard), whereas [`ShardedMixingEngine::migrate`]'s deterministic
/// rebuild produces walker-id order.  Restoring via a rebuild would be a
/// *distribution-identical but not bitwise* continuation — exactly what the
/// durable runtime's recovery proof forbids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// ChaCha8 key words of the shard stream.
    pub rng_key: [u32; 8],
    /// Next block index of the shard stream.
    pub rng_counter: u64,
    /// Next unread word of the current block (16 = exhausted).
    pub rng_cursor: u32,
    /// CSR starts over the shard's local nodes (`local_n + 1` entries).
    pub bucket_starts: Vec<usize>,
    /// Walkers in bucket order.
    pub bucket_walkers: Vec<u32>,
}

/// A complete, self-contained capture of a [`ShardedMixingEngine`]'s
/// round-boundary state: restoring it against the same `(graph, partition)`
/// continues the run **bit for bit** — positions, bucket orders, RNG
/// streams and per-round statistics of every subsequent round coincide
/// with the uninterrupted engine
/// ([`ShardedMixingEngine::restore_checkpoint`]).
///
/// Not captured (and provably not needed at a round boundary): the round
/// arenas and outboxes (cleared at the start of every sampling phase), the
/// global/local sent and load vectors (fully overwritten every round), and
/// the fast-mode RNG lane buffer (refilled fresh inside every decide call).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// `positions[w]` = global node holding walker `w`.
    pub positions: Vec<u32>,
    /// Rounds executed so far.
    pub round: usize,
    /// The draw mode subsequent rounds will use.
    pub draw_mode: DrawMode,
    /// Per-shard stream and bucket state, indexed by shard id.
    pub shards: Vec<ShardCheckpoint>,
}

/// The engine's topology slot: borrowed for the classic static-lifetime
/// setup, owned for the incremental churn runtime where each round's
/// snapshot is produced on the fly and has no home to outlive the engine
/// ([`ShardedMixingEngine::retarget_owned`]).
#[derive(Debug, Clone)]
enum GraphRef<'g> {
    Borrowed(&'g Graph),
    Owned(Box<Graph>),
}

impl GraphRef<'_> {
    fn get(&self) -> &Graph {
        match self {
            GraphRef::Borrowed(g) => g,
            GraphRef::Owned(g) => g,
        }
    }
}

/// The engine's partition slot, mirroring [`GraphRef`] for online
/// repartitioning ([`ShardedMixingEngine::migrate_owned`]).
#[derive(Debug, Clone)]
enum PartitionRef<'g> {
    Borrowed(&'g Partition),
    Owned(Box<Partition>),
}

impl PartitionRef<'_> {
    fn get(&self) -> &Partition {
        match self {
            PartitionRef::Borrowed(p) => p,
            PartitionRef::Owned(p) => p,
        }
    }
}

/// Multi-shard executor of holder-order exchange rounds.
///
/// See the [module docs](self) for the determinism and degeneracy contracts.
#[derive(Debug, Clone)]
pub struct ShardedMixingEngine<'g> {
    graph: GraphRef<'g>,
    partition: PartitionRef<'g>,
    /// `positions[w]` is the global node currently holding walker `w`,
    /// u32-compressed like the graph's CSR.
    positions: Vec<u32>,
    /// How rounds draw randomness (see [`DrawMode`]); `Compat` by default.
    draw_mode: DrawMode,
    round: usize,
    shards: Vec<ShardState>,
    /// `outboxes[s][d]` holds shard `s`'s cross-(and intra-)shard sends to
    /// shard `d` this round, as `(destination global node, walker)` in send
    /// order.
    outboxes: Vec<Vec<Vec<(u32, u32)>>>,
    /// Whole-population per-round statistics (global node order).
    sent: Vec<u32>,
    load: Vec<u32>,
    /// Attached telemetry (`None` = the no-op path).  Inert by
    /// construction — recording never draws randomness or touches round
    /// state — and shared across the pipelined workers (`Sync` handles).
    telemetry: Option<EngineTelemetry>,
}

impl<'g> ShardedMixingEngine<'g> {
    /// Creates a sharded engine with one walker per node, walker `i`
    /// starting at node `i` — the initial condition of network shuffling.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedMixingEngine::with_starts`].
    pub fn one_walker_per_node(
        graph: &'g Graph,
        partition: &'g Partition,
        seed: u64,
    ) -> Result<Self> {
        let starts: Vec<NodeId> = graph.nodes().collect();
        Self::with_starts(graph, partition, starts, seed)
    }

    /// Creates a sharded engine with walkers at the given starting nodes.
    ///
    /// Initial buckets group walkers by holder in walker-id order, exactly
    /// like [`crate::mixing_engine::MixingEngine::ensure_buckets`].
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] / [`GraphError::IsolatedNode`] for graphs
    /// the walk cannot run on, [`GraphError::InvalidParameters`] if the
    /// partition does not cover the graph or the id space overflows `u32`,
    /// [`GraphError::NodeOutOfRange`] for a bad start.
    pub fn with_starts(
        graph: &'g Graph,
        partition: &'g Partition,
        starts: Vec<NodeId>,
        seed: u64,
    ) -> Result<Self> {
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if partition.node_count() != n {
            return Err(GraphError::InvalidParameters(format!(
                "partition covers {} nodes but the graph has {n}",
                partition.node_count()
            )));
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        if let Some(&bad) = starts.iter().find(|&&s| s >= n) {
            return Err(GraphError::NodeOutOfRange {
                node: bad,
                node_count: n,
            });
        }
        if starts.len() > u32::MAX as usize || n > u32::MAX as usize {
            return Err(GraphError::InvalidParameters(format!(
                "sharded engine supports at most 2^32 - 1 walkers and nodes, got {} walkers on {n} nodes",
                starts.len()
            )));
        }
        let k = partition.shard_count();
        let mut shards: Vec<ShardState> = (0..k)
            .map(|s| {
                let local_n = partition.shard(s).len();
                ShardState {
                    rng: shard_stream(seed, s),
                    bucket_starts: vec![0; local_n + 1],
                    bucket_walkers: Vec::new(),
                    arena: RoundArena::new(),
                    sent_local: vec![0; local_n],
                    load_local: vec![0; local_n],
                }
            })
            .collect();
        // Initial buckets: route each walker to its shard once, then run
        // the kernel's counting-sort merge per shard with no survivors and
        // the shard's arrivals (in walker-id order) as the stream —
        // exactly like
        // [`crate::mixing_engine::MixingEngine::ensure_buckets`].
        let mut initial_arrivals: Vec<Vec<(usize, u32)>> = vec![Vec::new(); k];
        for (walker, &node) in starts.iter().enumerate() {
            initial_arrivals[partition.shard_of(node)]
                .push((partition.local_of(node), walker as u32));
        }
        for (s, state) in shards.iter_mut().enumerate() {
            let local_n = partition.shard(s).len();
            round::merge_round_buckets(
                local_n,
                &mut state.arena,
                &mut state.load_local,
                &mut state.bucket_starts,
                &mut state.bucket_walkers,
                |sink| {
                    for &(lu, w) in &initial_arrivals[s] {
                        sink(lu, w);
                    }
                },
            );
        }
        Ok(ShardedMixingEngine {
            graph: GraphRef::Borrowed(graph),
            partition: PartitionRef::Borrowed(partition),
            positions: starts.iter().map(|&s| s as u32).collect(),
            draw_mode: DrawMode::Compat,
            round: 0,
            shards,
            outboxes: vec![vec![Vec::new(); k]; k],
            sent: vec![0; n],
            load: vec![0; n],
            telemetry: None,
        })
    }

    /// Attaches (or with `None` detaches) the phase-timing telemetry
    /// bundle.  All recording from here on writes preregistered atomic
    /// slots — steady-state rounds stay allocation-free, and because
    /// telemetry never draws randomness or touches state, instrumented
    /// rounds are bitwise identical to bare ones.
    pub fn set_telemetry(&mut self, telemetry: Option<EngineTelemetry>) {
        self.telemetry = telemetry;
    }

    /// The engine's current draw mode.
    pub fn draw_mode(&self) -> DrawMode {
        self.draw_mode
    }

    /// Selects how subsequent rounds draw randomness.  Switching modes
    /// changes the realization of the walk but not its distribution; all
    /// determinism contracts (seed-only, shard-order-free, thread-count
    /// invariance) hold in both modes.
    pub fn set_draw_mode(&mut self, mode: DrawMode) {
        self.draw_mode = mode;
    }

    /// The graph the walkers move on.
    pub fn graph(&self) -> &Graph {
        self.graph.get()
    }

    /// The partition the engine shards by.
    pub fn partition(&self) -> &Partition {
        self.partition.get()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of walkers being tracked.
    pub fn walker_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Current position (global node) of walker `w`.
    pub fn position(&self, walker: usize) -> NodeId {
        self.positions[walker] as NodeId
    }

    /// Current positions of all walkers (`positions[w] = holder of w`),
    /// u32-compressed; widen with `as usize` where a [`NodeId`] is needed.
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Per-node relay messages sent in the latest completed round
    /// (`sent[u]` for global node `u`; all zeros before the first round).
    pub fn sent_counts(&self) -> &[u32] {
        &self.sent
    }

    /// Histogram of walkers per global node.
    pub fn load_vector(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.graph.get().node_count()];
        for &node in &self.positions {
            load[node as usize] += 1;
        }
        load
    }

    /// The walkers currently held by global node `u`, in bucket order
    /// (survivors first, then arrivals grouped by source shard).
    pub fn held_by(&self, u: NodeId) -> &[u32] {
        let partition = self.partition.get();
        let state = &self.shards[partition.shard_of(u)];
        let lu = partition.local_of(u);
        &state.bucket_walkers[state.bucket_starts[lu]..state.bucket_starts[lu + 1]]
    }

    /// Groups walkers by their current holder, in bucket order.
    pub fn walkers_by_holder(&self) -> Vec<Vec<usize>> {
        self.graph
            .get()
            .nodes()
            .map(|u| self.held_by(u).iter().map(|&w| w as usize).collect())
            .collect()
    }

    /// Mutable access to shard `shard`'s RNG stream.
    ///
    /// The service layer draws its final-round submission choices from the
    /// submitter's shard stream, so a 1-shard deployment consumes the walk
    /// *and* finalization draws exactly like the single-engine protocol
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_rng_mut(&mut self, shard: usize) -> &mut SimRng {
        &mut self.shards[shard].rng
    }

    /// The `(next block, next word)` clock of shard `shard`'s RNG stream —
    /// a cheap consistency fingerprint the durable runtime logs with every
    /// round record: on replay, a clock mismatch means the recovered engine
    /// is *not* re-living the logged history and recovery must abort rather
    /// than silently diverge.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn rng_clock(&self, shard: usize) -> (u64, u32) {
        let (_, counter, cursor) = self.shards[shard].rng.state();
        (counter, cursor)
    }

    /// Captures the engine's complete round-boundary state.  See
    /// [`EngineCheckpoint`] for what is (and deliberately isn't) included.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            positions: self.positions.clone(),
            round: self.round,
            draw_mode: self.draw_mode,
            shards: self
                .shards
                .iter()
                .map(|state| {
                    let (rng_key, rng_counter, rng_cursor) = state.rng.state();
                    ShardCheckpoint {
                        rng_key,
                        rng_counter,
                        rng_cursor,
                        bucket_starts: state.bucket_starts.clone(),
                        bucket_walkers: state.bucket_walkers.clone(),
                    }
                })
                .collect(),
        }
    }

    /// Reconstructs an engine from an [`EngineCheckpoint`] against the same
    /// `(graph, partition)` the checkpointed engine ran on.  The restored
    /// engine continues **bit for bit**: every subsequent round's
    /// positions, bucket orders, statistics and RNG draws equal the
    /// uninterrupted engine's.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the checkpoint's shape is
    /// inconsistent with `(graph, partition)` — wrong shard count, bucket
    /// CSRs that don't cover the shard's local nodes, walkers missing or
    /// duplicated, or a walker bucketed at a node other than its recorded
    /// position.  Also the usual topology errors from
    /// [`ShardedMixingEngine::with_starts`] validation.
    pub fn restore_checkpoint(
        graph: &'g Graph,
        partition: &'g Partition,
        checkpoint: &EngineCheckpoint,
    ) -> Result<Self> {
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if partition.node_count() != n {
            return Err(GraphError::InvalidParameters(format!(
                "partition covers {} nodes but the graph has {n}",
                partition.node_count()
            )));
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        let k = partition.shard_count();
        if checkpoint.shards.len() != k {
            return Err(GraphError::InvalidParameters(format!(
                "checkpoint has {} shards but the partition has {k}",
                checkpoint.shards.len()
            )));
        }
        if let Some(&bad) = checkpoint.positions.iter().find(|&&p| p as usize >= n) {
            return Err(GraphError::NodeOutOfRange {
                node: bad as NodeId,
                node_count: n,
            });
        }
        // Cross-check buckets against positions: every walker must appear in
        // exactly one bucket, at the local node its position maps to.
        let mut seen = vec![false; checkpoint.positions.len()];
        for (s, shard_cp) in checkpoint.shards.iter().enumerate() {
            let local_n = partition.shard(s).len();
            if shard_cp.bucket_starts.len() != local_n + 1
                || shard_cp.bucket_starts[0] != 0
                || shard_cp.bucket_starts.windows(2).any(|w| w[0] > w[1])
                || shard_cp.bucket_starts[local_n] != shard_cp.bucket_walkers.len()
            {
                return Err(GraphError::InvalidParameters(format!(
                    "shard {s} checkpoint buckets do not form a CSR over {local_n} local nodes"
                )));
            }
            for lu in 0..local_n {
                let global = partition.shard(s).global_of(lu);
                let bucket = &shard_cp.bucket_walkers
                    [shard_cp.bucket_starts[lu]..shard_cp.bucket_starts[lu + 1]];
                for &w in bucket {
                    let valid = (w as usize) < seen.len()
                        && !seen[w as usize]
                        && checkpoint.positions[w as usize] as usize == global;
                    if !valid {
                        return Err(GraphError::InvalidParameters(format!(
                            "shard {s} checkpoint bucket at node {global} holds walker {w}, \
                             which is out of range, duplicated, or positioned elsewhere"
                        )));
                    }
                    seen[w as usize] = true;
                }
            }
        }
        if let Some(w) = seen.iter().position(|&s| !s) {
            return Err(GraphError::InvalidParameters(format!(
                "walker {w} has a position but no bucket slot in the checkpoint"
            )));
        }
        let shards: Vec<ShardState> = checkpoint
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard_cp)| {
                let local_n = partition.shard(s).len();
                ShardState {
                    rng: SimRng::from_state(
                        shard_cp.rng_key,
                        shard_cp.rng_counter,
                        shard_cp.rng_cursor,
                    ),
                    bucket_starts: shard_cp.bucket_starts.clone(),
                    bucket_walkers: shard_cp.bucket_walkers.clone(),
                    arena: RoundArena::new(),
                    sent_local: vec![0; local_n],
                    load_local: vec![0; local_n],
                }
            })
            .collect();
        Ok(ShardedMixingEngine {
            graph: GraphRef::Borrowed(graph),
            partition: PartitionRef::Borrowed(partition),
            positions: checkpoint.positions.clone(),
            draw_mode: checkpoint.draw_mode,
            round: checkpoint.round,
            shards,
            outboxes: vec![vec![Vec::new(); k]; k],
            sent: vec![0; n],
            load: vec![0; n],
            telemetry: None,
        })
    }

    /// Swaps in a new topology for subsequent rounds — the churn runtime's
    /// `retarget`/delta-apply hook, mirroring
    /// [`crate::mixing_engine::MixingEngine::retarget`].  Walker positions,
    /// per-shard buckets, RNG streams and the round counter carry over
    /// unchanged; only where walkers can move *next* changes.  The node
    /// count must match (the partition's shard assignment stays valid:
    /// users are stable, churn rewires edges and availability, not
    /// identity) and the new topology must have no isolated nodes.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] on a node-count mismatch,
    /// [`GraphError::IsolatedNode`] if the new topology has one.
    pub fn retarget(&mut self, graph: &'g Graph) -> Result<()> {
        self.validate_retarget(graph)?;
        self.graph = GraphRef::Borrowed(graph);
        Ok(())
    }

    /// [`ShardedMixingEngine::retarget`] taking ownership of the new
    /// topology — the hook for per-round churn snapshots that have no
    /// stable home to borrow from (each round's
    /// [`crate::dynamic::DynamicGraph::snapshot`] clone can be handed
    /// straight to the engine).
    ///
    /// # Errors
    ///
    /// Same as [`ShardedMixingEngine::retarget`].
    pub fn retarget_owned(&mut self, graph: Graph) -> Result<()> {
        self.validate_retarget(&graph)?;
        self.graph = GraphRef::Owned(Box::new(graph));
        Ok(())
    }

    fn validate_retarget(&self, graph: &Graph) -> Result<()> {
        if graph.node_count() != self.graph.get().node_count() {
            return Err(GraphError::InvalidParameters(format!(
                "cannot retarget an engine on {} nodes to a graph with {}",
                self.graph.get().node_count(),
                graph.node_count()
            )));
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        Ok(())
    }

    /// Migrates the engine to a new shard assignment mid-run — the online
    /// repartitioning exchange.  Walker positions, per-shard RNG streams,
    /// the draw mode and the round counter carry over unchanged; every
    /// shard's buckets are rebuilt deterministically under the new
    /// partition by one counting-sort pass fed with the shard's walkers in
    /// walker-id order (the [`ShardedMixingEngine::with_starts`]
    /// initial-bucket rule), so the result is a fixed function of
    /// `(positions, partition)` — independent of the old bucket orders and
    /// of how many rounds ran before.
    ///
    /// Returns the **movers**: the ascending list of global nodes whose
    /// shard assignment changed.  In a distributed deployment these are the
    /// users whose report queues are in flight between shards for one
    /// round; mask them for the round after migrating
    /// ([`ShardedMixingEngine::step_masked`]) and the accountant prices the
    /// migration through the ordinary masked-operator path.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the new partition's node count
    /// or shard count differs from the engine's (shard RNG streams are
    /// per-shard state; changing the shard count mid-run would forfeit
    /// seed-only determinism).
    pub fn migrate(&mut self, partition: &'g Partition) -> Result<Vec<NodeId>> {
        let mut movers = Vec::new();
        self.migrate_ref(PartitionRef::Borrowed(partition), &mut movers)?;
        Ok(movers)
    }

    /// [`ShardedMixingEngine::migrate`] taking ownership of the new
    /// partition — the hook for partitions refined online from a live
    /// [`crate::dynamic::DynamicGraph`]
    /// ([`crate::partition::Partition::refined_assignment`]), which have no
    /// stable home to borrow from.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedMixingEngine::migrate`].
    pub fn migrate_owned(&mut self, partition: Partition) -> Result<Vec<NodeId>> {
        let mut movers = Vec::new();
        self.migrate_ref(PartitionRef::Owned(Box::new(partition)), &mut movers)?;
        Ok(movers)
    }

    /// Buffer-reusing [`ShardedMixingEngine::migrate_owned`]: `movers` is
    /// cleared and refilled, so a steady-state migration loop alternating
    /// between warmed shapes performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedMixingEngine::migrate`].
    pub fn migrate_into(&mut self, partition: Partition, movers: &mut Vec<NodeId>) -> Result<()> {
        self.migrate_ref(PartitionRef::Owned(Box::new(partition)), movers)
    }

    /// Buffer-reusing [`ShardedMixingEngine::migrate`] borrowing the new
    /// partition: no box for the partition, `movers` cleared and refilled.
    /// Once the per-shard buffers have reached their high-water marks for
    /// every partition shape in rotation, a migration through this entry
    /// point performs **zero** heap allocations — the property the
    /// `sharded_mixing` steady-state audit pins.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedMixingEngine::migrate`].
    pub fn migrate_borrowed_into(
        &mut self,
        partition: &'g Partition,
        movers: &mut Vec<NodeId>,
    ) -> Result<()> {
        self.migrate_ref(PartitionRef::Borrowed(partition), movers)
    }

    fn migrate_ref(&mut self, new: PartitionRef<'g>, movers: &mut Vec<NodeId>) -> Result<()> {
        let next = new.get();
        let n = self.partition.get().node_count();
        if next.node_count() != n {
            return Err(GraphError::InvalidParameters(format!(
                "cannot migrate an engine over {n} nodes to a partition over {}",
                next.node_count()
            )));
        }
        if next.shard_count() != self.shards.len() {
            return Err(GraphError::InvalidParameters(format!(
                "cannot migrate {} shard streams to a {}-shard partition",
                self.shards.len(),
                next.shard_count()
            )));
        }
        movers.clear();
        {
            let old = self.partition.get();
            for u in 0..n {
                if old.shard_of(u) != next.shard_of(u) {
                    movers.push(u);
                }
            }
        }
        // Route every walker to its new shard in walker-id order, reusing
        // shard 0's outbox rows as the per-destination scratch (cleared at
        // the start of every sampling phase anyway).
        let routes = &mut self.outboxes[0];
        for row in routes.iter_mut() {
            row.clear();
        }
        for (w, &pos) in self.positions.iter().enumerate() {
            routes[next.shard_of(pos as usize)].push((pos, w as u32));
        }
        // Rebuild each shard's buckets with the kernel's counting sort: no
        // survivors, the routed walkers as the canonical arrival stream.
        for (d, state) in self.shards.iter_mut().enumerate() {
            let local_n = next.shard(d).len();
            state.bucket_starts.resize(local_n + 1, 0);
            state.sent_local.resize(local_n, 0);
            state.sent_local.fill(0);
            state.load_local.resize(local_n, 0);
            state.arena.kept_nodes.clear();
            state.arena.kept_walkers.clear();
            let row = &self.outboxes[0][d];
            round::merge_round_buckets(
                local_n,
                &mut state.arena,
                &mut state.load_local,
                &mut state.bucket_starts,
                &mut state.bucket_walkers,
                |sink| {
                    for &(dest, w) in row {
                        sink(next.local_of(dest as usize), w);
                    }
                },
            );
        }
        // Positions are untouched, so the global per-node sent/load
        // statistics still describe the last executed round.
        self.partition = new;
        Ok(())
    }

    /// Executes one holder-order round across all shards (shard sampling in
    /// ascending shard order, which — by the determinism contract — yields
    /// the same result as any other order), streaming whole-population
    /// statistics to `observer` (pass `&mut ()` to skip).
    pub fn step<O: RoundObserver>(&mut self, laziness: f64, observer: &mut O) {
        self.step_masked_opt(laziness, None, observer);
    }

    /// [`ShardedMixingEngine::step`] under an availability mask (global
    /// node ids): a walker whose chosen recipient is unavailable stays put
    /// for the round — in a distributed deployment, a cross-shard delivery
    /// to a dark recipient bounces back to its source shard through the
    /// return leg of the exchange and rejoins the holder's bucket as a
    /// survivor, which is exactly how the kernel accounts it (not sent, not
    /// an arrival).  With an all-available mask the round is bit-for-bit
    /// [`ShardedMixingEngine::step`], and under a 1-shard partition it is
    /// bit-for-bit
    /// [`crate::mixing_engine::MixingEngine::step_holder_masked`] — RNG
    /// stream, bucket orders and statistics included.
    ///
    /// # Panics
    ///
    /// Panics if `available.len()` differs from the node count.
    pub fn step_masked<O: RoundObserver>(
        &mut self,
        laziness: f64,
        available: &[bool],
        observer: &mut O,
    ) {
        assert_eq!(
            available.len(),
            self.graph.get().node_count(),
            "availability mask has the wrong length"
        );
        self.step_masked_opt(laziness, Some(available), observer);
    }

    fn step_masked_opt<O: RoundObserver>(
        &mut self,
        laziness: f64,
        available: Option<&[bool]>,
        observer: &mut O,
    ) {
        let graph = self.graph.get();
        let partition = self.partition.get();
        let mode = self.draw_mode;
        let telemetry = self.telemetry.as_ref();
        for (s, (state, outbox)) in self
            .shards
            .iter_mut()
            .zip(self.outboxes.iter_mut())
            .enumerate()
        {
            let _span = telemetry.map(|t| t.decide_ns.span(&t.clock));
            sample_shard_round(
                graph, partition, s, state, outbox, laziness, available, mode,
            );
        }
        self.record_sampling_telemetry();
        self.merge_round(observer);
    }

    /// Folds the finished sampling phase's per-shard accounting — mask
    /// bounces and outbox row depths — into the attached telemetry.
    /// Reads only; called once per round between sampling and merge.
    fn record_sampling_telemetry(&self) {
        if let Some(t) = &self.telemetry {
            for state in &self.shards {
                t.mask_bounces.add(state.arena.bounced());
            }
            for source in &self.outboxes {
                for row in source {
                    t.outbox_depth.record(row.len() as u64);
                }
            }
        }
    }

    /// [`ShardedMixingEngine::step`] with the per-shard sampling phase run
    /// in an explicit shard order — the determinism audit hook: any
    /// permutation of `0..shard_count` must produce bitwise identical
    /// results, because shards only touch their own stream and outboxes and
    /// the merge order is canonical.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..shard_count`.
    pub fn step_in_order<O: RoundObserver>(
        &mut self,
        laziness: f64,
        order: &[usize],
        observer: &mut O,
    ) {
        self.step_in_order_masked_opt(laziness, None, order, observer);
    }

    /// [`ShardedMixingEngine::step_masked`] with an explicit shard order —
    /// the audit hook extended to masked rounds.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..shard_count` or the
    /// mask length differs from the node count.
    pub fn step_masked_in_order<O: RoundObserver>(
        &mut self,
        laziness: f64,
        available: &[bool],
        order: &[usize],
        observer: &mut O,
    ) {
        assert_eq!(
            available.len(),
            self.graph.get().node_count(),
            "availability mask has the wrong length"
        );
        self.step_in_order_masked_opt(laziness, Some(available), order, observer);
    }

    fn step_in_order_masked_opt<O: RoundObserver>(
        &mut self,
        laziness: f64,
        available: Option<&[bool]>,
        order: &[usize],
        observer: &mut O,
    ) {
        let k = self.shards.len();
        let mut seen = vec![false; k];
        assert_eq!(order.len(), k, "order must cover every shard exactly once");
        for &s in order {
            assert!(s < k && !seen[s], "order must be a permutation of 0..{k}");
            seen[s] = true;
        }
        let graph = self.graph.get();
        let partition = self.partition.get();
        let mode = self.draw_mode;
        let telemetry = self.telemetry.clone();
        for &s in order {
            let _span = telemetry.as_ref().map(|t| t.decide_ns.span(&t.clock));
            sample_shard_round(
                graph,
                partition,
                s,
                &mut self.shards[s],
                &mut self.outboxes[s],
                laziness,
                available,
                mode,
            );
        }
        self.record_sampling_telemetry();
        self.merge_round(observer);
    }

    /// Runs a full walk of holder-order rounds, streaming statistics to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// Propagates [`WalkConfig::validate`] errors.
    pub fn run<O: RoundObserver>(&mut self, config: WalkConfig, observer: &mut O) -> Result<()> {
        config.validate()?;
        for _ in 0..config.rounds {
            self.step(config.laziness, observer);
        }
        Ok(())
    }

    /// [`ShardedMixingEngine::step`] with the sampling phase on scoped
    /// threads when the `parallel` feature is enabled, the plain sequential
    /// step otherwise — bitwise identical either way.
    pub fn step_auto<O: RoundObserver>(&mut self, laziness: f64, observer: &mut O) {
        #[cfg(feature = "parallel")]
        self.step_threaded(laziness, observer);
        #[cfg(not(feature = "parallel"))]
        self.step(laziness, observer);
    }

    /// [`ShardedMixingEngine::step_masked`] with the sampling phase on
    /// scoped threads when the `parallel` feature is enabled, the plain
    /// sequential masked step otherwise — bitwise identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `available.len()` differs from the node count.
    pub fn step_masked_auto<O: RoundObserver>(
        &mut self,
        laziness: f64,
        available: &[bool],
        observer: &mut O,
    ) {
        #[cfg(feature = "parallel")]
        self.step_masked_threaded(laziness, available, observer);
        #[cfg(not(feature = "parallel"))]
        self.step_masked(laziness, available, observer);
    }

    /// The canonical exchange phase: merges survivors and (per source
    /// shard, in ascending shard order) deliveries into each shard's
    /// next-round buckets via one counting sort per shard, updates walker
    /// positions, folds the per-shard statistics into the global vectors
    /// and reports the round.
    fn merge_round<O: RoundObserver>(&mut self, observer: &mut O) {
        let partition = self.partition.get();
        let k = self.shards.len();
        let telemetry = self.telemetry.clone();
        for d in 0..k {
            let nodes = partition.shard(d).nodes();
            let local_n = nodes.len();
            // Record delivered walkers' new positions (send order within a
            // source row; final values are order-independent — each walker
            // appears in exactly one outbox entry).  The walker ids index
            // the position array essentially at random, so prefetch a few
            // entries ahead.
            {
                let _span = telemetry.as_ref().map(|t| t.exchange_ns.span(&t.clock));
                for source in self.outboxes.iter() {
                    let row = &source[d];
                    for (i, &(dest, w)) in row.iter().enumerate() {
                        if let Some(&(_, wf)) = row.get(i + 8) {
                            round::prefetch_read(&self.positions, wf as usize);
                        }
                        self.positions[w as usize] = dest;
                    }
                }
            }
            // The kernel's counting-sort merge: survivors first (grouped by
            // local node, a decide-phase invariant), then arrivals by
            // source shard in ascending id, each row in send order — the
            // canonical order that makes the exchange execution-order-free.
            let state = &mut self.shards[d];
            let outboxes = &self.outboxes;
            {
                let _span = telemetry.as_ref().map(|t| t.merge_ns.span(&t.clock));
                round::merge_round_buckets(
                    local_n,
                    &mut state.arena,
                    &mut state.load_local,
                    &mut state.bucket_starts,
                    &mut state.bucket_walkers,
                    |sink| {
                        for source in outboxes.iter() {
                            for &(dest, w) in &source[d] {
                                sink(partition.local_of(dest as usize), w);
                            }
                        }
                    },
                );
            }
            // Fold this shard's statistics into the global vectors.
            for (lu, &u) in nodes.iter().enumerate() {
                self.sent[u] = state.sent_local[lu];
                self.load[u] = state.load_local[lu];
            }
        }
        debug_assert_eq!(
            self.load.iter().map(|&l| l as usize).sum::<usize>(),
            self.positions.len(),
            "round conservation violated: survivors + arrivals + bounces must equal the walkers"
        );
        self.round += 1;
        if let Some(t) = &self.telemetry {
            t.rounds.inc();
        }
        observer.on_round(&RoundStats {
            round: self.round,
            sent: &self.sent,
            load: &self.load,
        });
    }
}

/// Phase 1 for one shard: the kernel's decide sweep over the shard's nodes
/// in ascending local (= global) order, drawing every move from the shard's
/// own stream through the engine-wide sampling rule (compat or fast).
/// Survivors — lazy stays *and* masked bounces — stay in the shard's arena;
/// every delivery, intra- or cross-shard, is then routed from the arena's
/// delivery buffers to the outbox row of its destination shard, preserving
/// send order.
#[allow(clippy::too_many_arguments)]
fn sample_shard_round(
    graph: &Graph,
    partition: &Partition,
    shard: usize,
    state: &mut ShardState,
    outbox: &mut [Vec<(u32, u32)>],
    laziness: f64,
    available: Option<&[bool]>,
    mode: DrawMode,
) {
    for row in outbox.iter_mut() {
        row.clear();
    }
    let plan = RoundPlan {
        graph,
        laziness,
        available,
    };
    let nodes = partition.shard(shard).nodes();
    let ShardState {
        rng,
        bucket_starts,
        bucket_walkers,
        arena,
        sent_local,
        ..
    } = state;
    let holders = nodes.iter().copied().enumerate();
    let buckets = round::HolderBuckets {
        starts: bucket_starts,
        walkers: bucket_walkers,
    };
    match mode {
        DrawMode::Compat => {
            round::decide_holder_moves(&plan, holders, buckets, sent_local, arena, rng)
        }
        DrawMode::Fast => {
            round::decide_holder_moves_fast(&plan, holders, buckets, sent_local, arena, rng)
        }
    }
    let (dests, walkers) = arena.deliveries();
    for (&dest, &w) in dests.iter().zip(walkers) {
        outbox[partition.shard_of(dest as usize)].push((dest, w));
    }
}

/// Data-parallel shard sampling (enabled by the `parallel` feature).
///
/// As elsewhere in the workspace, rayon is unavailable, so shards are dealt
/// round-robin to `std::thread::scope` workers.  Each shard samples from its
/// own stream into its own outbox row, and the merge phase is a fixed
/// function of those outputs, so threaded rounds are **bitwise equal** to
/// sequential ones for any thread count.
#[cfg(feature = "parallel")]
mod parallel {
    use super::{sample_shard_round, ShardState, ShardedMixingEngine};
    use crate::mixing_engine::RoundObserver;
    use crate::round;

    /// One shard's sampling-phase work item: shard id, state and outbox row.
    type ShardWork<'a> = (usize, (&'a mut ShardState, &'a mut Vec<Vec<(u32, u32)>>));

    /// A raw pointer that may cross thread boundaries.  Every use in the
    /// pipelined round loop touches a provably disjoint region per worker
    /// (own shard state, own outbox source row, walkers delivered to the
    /// own shard, the own shard's slice of the global statistics), with a
    /// barrier per round ordering the cross-worker hand-offs.
    struct SendPtr<T>(*mut T);

    impl<T> SendPtr<T> {
        /// The wrapped pointer.  Going through a method (rather than field
        /// access) makes closures capture the whole `SendPtr` — and with it
        /// the `Send`/`Sync` impls — instead of the bare `*mut T` field
        /// under edition-2021 precise capture.
        fn get(self) -> *mut T {
            self.0
        }
    }

    impl<T> Clone for SendPtr<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for SendPtr<T> {}

    #[allow(unsafe_code)]
    // Safety: see the struct docs — all dereferences are disjoint by
    // construction and ordered by the per-round barrier.
    unsafe impl<T> Send for SendPtr<T> {}
    #[allow(unsafe_code)]
    unsafe impl<T> Sync for SendPtr<T> {}

    impl ShardedMixingEngine<'_> {
        /// Multi-threaded [`ShardedMixingEngine::step`]; bitwise identical
        /// results.
        pub fn step_threaded<O: RoundObserver>(&mut self, laziness: f64, observer: &mut O) {
            self.step_threaded_masked_opt(laziness, None, observer);
        }

        /// Multi-threaded [`ShardedMixingEngine::step_masked`]; bitwise
        /// identical results.
        ///
        /// # Panics
        ///
        /// Panics if `available.len()` differs from the node count.
        pub fn step_masked_threaded<O: RoundObserver>(
            &mut self,
            laziness: f64,
            available: &[bool],
            observer: &mut O,
        ) {
            assert_eq!(
                available.len(),
                self.graph().node_count(),
                "availability mask has the wrong length"
            );
            self.step_threaded_masked_opt(laziness, Some(available), observer);
        }

        fn step_threaded_masked_opt<O: RoundObserver>(
            &mut self,
            laziness: f64,
            available: Option<&[bool]>,
            observer: &mut O,
        ) {
            let graph = self.graph.get();
            let partition = self.partition.get();
            let mode = self.draw_mode;
            let work: Vec<ShardWork<'_>> = self
                .shards
                .iter_mut()
                .zip(self.outboxes.iter_mut())
                .enumerate()
                .collect();
            let threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(work.len())
                .max(1);
            let mut per_thread: Vec<Vec<_>> = (0..threads).map(|_| Vec::new()).collect();
            for (index, item) in work.into_iter().enumerate() {
                per_thread[index % threads].push(item);
            }
            let telemetry = self.telemetry.clone();
            std::thread::scope(|scope| {
                for assignment in per_thread {
                    let telemetry = telemetry.clone();
                    scope.spawn(move || {
                        for (s, (state, outbox)) in assignment {
                            let _span = telemetry.as_ref().map(|t| t.decide_ns.span(&t.clock));
                            sample_shard_round(
                                graph, partition, s, state, outbox, laziness, available, mode,
                            );
                        }
                    });
                }
            });
            self.record_sampling_telemetry();
            self.merge_round(observer);
        }

        /// Runs `rounds` holder-order rounds with the cross-shard exchange
        /// pipelined against the next round's compute: one worker per
        /// shard, double-buffered outboxes and exactly one barrier per
        /// round.  Worker `s` samples round `r` into buffer `r % 2`, waits
        /// at the barrier (all outboxes of round `r` complete), merges its
        /// *own* shard's arrivals — and immediately samples round `r + 1`
        /// into the other buffer while slower workers are still merging
        /// round `r`.  Double buffering is what makes that overlap safe:
        /// round `r + 1` sampling writes never touch the buffer round `r`
        /// merges read.
        ///
        /// Bitwise identical to `rounds` sequential
        /// [`ShardedMixingEngine::step`] calls: the per-shard streams,
        /// sweep orders and canonical merge order are unchanged — only the
        /// schedule differs.  Per-round statistics are not observable
        /// mid-run (merges of different rounds overlap); the engine's
        /// sent/load vectors hold the final round's values afterwards.
        pub fn run_pipelined(&mut self, laziness: f64, rounds: usize) {
            self.run_pipelined_masked_opt(laziness, None, rounds);
        }

        /// [`ShardedMixingEngine::run_pipelined`] under a fixed
        /// availability mask.
        ///
        /// # Panics
        ///
        /// Panics if `available.len()` differs from the node count.
        pub fn run_pipelined_masked(&mut self, laziness: f64, available: &[bool], rounds: usize) {
            assert_eq!(
                available.len(),
                self.graph().node_count(),
                "availability mask has the wrong length"
            );
            self.run_pipelined_masked_opt(laziness, Some(available), rounds);
        }

        #[allow(unsafe_code)]
        fn run_pipelined_masked_opt(
            &mut self,
            laziness: f64,
            available: Option<&[bool]>,
            rounds: usize,
        ) {
            if rounds == 0 {
                return;
            }
            let k = self.shards.len();
            let graph = self.graph.get();
            let partition = self.partition.get();
            let mode = self.draw_mode;
            // Buffer 0 is the engine's resident outboxes, buffer 1 an
            // identically shaped alternate; both live for the whole run, so
            // per-call allocation is independent of the round count.
            let mut alt: Vec<Vec<Vec<(u32, u32)>>> = vec![vec![Vec::new(); k]; k];
            let barrier = std::sync::Barrier::new(k);
            let shards_ptr = SendPtr(self.shards.as_mut_ptr());
            let bufs = [
                SendPtr(self.outboxes.as_mut_ptr()),
                SendPtr(alt.as_mut_ptr()),
            ];
            let positions_ptr = SendPtr(self.positions.as_mut_ptr());
            let sent_ptr = SendPtr(self.sent.as_mut_ptr());
            let load_ptr = SendPtr(self.load.as_mut_ptr());
            let telemetry = self.telemetry.clone();
            std::thread::scope(|scope| {
                for s in 0..k {
                    let barrier = &barrier;
                    let telemetry = telemetry.clone();
                    scope.spawn(move || {
                        for r in 0..rounds {
                            let cur = bufs[r % 2];
                            // Safety: worker `s` is the only one touching
                            // `shards[s]` and outbox source row `cur[s]`;
                            // the previous reads of this buffer (round
                            // `r - 2`'s merges) finished before the last
                            // barrier.
                            let state = unsafe { &mut *shards_ptr.get().add(s) };
                            let outbox = unsafe { &mut *cur.get().add(s) };
                            {
                                let _span = telemetry.as_ref().map(|t| t.decide_ns.span(&t.clock));
                                sample_shard_round(
                                    graph, partition, s, state, outbox, laziness, available, mode,
                                );
                            }
                            if let Some(t) = &telemetry {
                                t.mask_bounces.add(state.arena.bounced());
                                for row in outbox.iter() {
                                    t.outbox_depth.record(row.len() as u64);
                                }
                            }
                            {
                                let _span =
                                    telemetry.as_ref().map(|t| t.barrier_wait_ns.span(&t.clock));
                                barrier.wait();
                            }
                            // Merge destination shard `s`: every source
                            // row `cur[src][s]` is complete (barrier) and
                            // read-only from here on; walkers arriving at
                            // shard `s` and shard `s`'s statistics slots
                            // are written by this worker alone.
                            let nodes = partition.shard(s).nodes();
                            let local_n = nodes.len();
                            {
                                let _span =
                                    telemetry.as_ref().map(|t| t.exchange_ns.span(&t.clock));
                                for src in 0..k {
                                    let source = unsafe { &*cur.get().add(src).cast_const() };
                                    for &(dest, w) in &source[s] {
                                        unsafe {
                                            *positions_ptr.get().add(w as usize) = dest;
                                        }
                                    }
                                }
                            }
                            let state = unsafe { &mut *shards_ptr.get().add(s) };
                            let ShardState {
                                bucket_starts,
                                bucket_walkers,
                                arena,
                                load_local,
                                ..
                            } = state;
                            let _span = telemetry.as_ref().map(|t| t.merge_ns.span(&t.clock));
                            round::merge_round_buckets(
                                local_n,
                                arena,
                                load_local,
                                bucket_starts,
                                bucket_walkers,
                                |sink| {
                                    for src in 0..k {
                                        let source = unsafe { &*cur.get().add(src).cast_const() };
                                        for &(dest, w) in &source[s] {
                                            sink(partition.local_of(dest as usize), w);
                                        }
                                    }
                                },
                            );
                            for (lu, &u) in nodes.iter().enumerate() {
                                unsafe {
                                    *sent_ptr.get().add(u) = state.sent_local[lu];
                                    *load_ptr.get().add(u) = state.load_local[lu];
                                }
                            }
                        }
                    });
                }
            });
            drop(alt);
            self.round += rounds;
            if let Some(t) = &self.telemetry {
                t.rounds.add(rounds as u64);
            }
            debug_assert_eq!(
                self.load.iter().map(|&l| l as usize).sum::<usize>(),
                self.positions.len(),
                "round conservation violated: survivors + arrivals + bounces must equal the walkers"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::mixing_engine::MixingEngine;
    use crate::rng::seeded_rng;

    fn graph(n: usize, k: usize, seed: u64) -> Graph {
        generators::random_regular(n, k, &mut seeded_rng(seed)).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        let g = graph(40, 4, 1);
        let p = Partition::new(&g, 4).unwrap();
        let other = graph(30, 4, 2);
        assert!(ShardedMixingEngine::one_walker_per_node(&other, &p, 7).is_err());
        assert!(ShardedMixingEngine::with_starts(&g, &p, vec![0, 41], 7).is_err());
        let empty = Graph::from_edges(0, &[]).unwrap();
        let p1 = Partition::single_shard(&g).unwrap();
        assert!(ShardedMixingEngine::one_walker_per_node(&empty, &p1, 7).is_err());
        let isolated = Graph::from_edges(40, &[(0, 1)]).unwrap();
        let pi = Partition::single_shard(&isolated).unwrap();
        assert!(ShardedMixingEngine::one_walker_per_node(&isolated, &pi, 7).is_err());
    }

    #[test]
    fn one_shard_is_bitwise_the_single_engine() {
        let g = graph(160, 6, 3);
        let p = Partition::single_shard(&g).unwrap();
        for laziness in [0.0, 0.3] {
            let mut sharded = ShardedMixingEngine::one_walker_per_node(&g, &p, 99).unwrap();
            let mut single = MixingEngine::one_walker_per_node(&g).unwrap();
            let mut rng = shard_stream(99, 0);
            for _ in 0..20 {
                sharded.step(laziness, &mut ());
                single.step_holder(laziness, &mut rng, &mut ());
            }
            assert_eq!(sharded.positions(), single.positions());
            assert_eq!(sharded.walkers_by_holder(), single.walkers_by_holder());
            // The engine consumed exactly the same stream: the next draws
            // coincide.
            use rand::Rng;
            let a: u64 = sharded.shard_rng_mut(0).gen();
            let b: u64 = rng.gen();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn walkers_are_conserved_and_buckets_track_positions() {
        let g = graph(120, 4, 4);
        let p = Partition::new(&g, 3).unwrap();
        let mut engine = ShardedMixingEngine::one_walker_per_node(&g, &p, 5).unwrap();
        for _ in 0..25 {
            engine.step(0.2, &mut ());
        }
        assert_eq!(engine.round(), 25);
        let load = engine.load_vector();
        assert_eq!(load.iter().sum::<usize>(), 120);
        for u in g.nodes() {
            assert_eq!(engine.held_by(u).len(), load[u]);
            for &w in engine.held_by(u) {
                assert_eq!(engine.position(w as usize), u);
            }
        }
    }

    #[test]
    fn shard_sampling_order_does_not_change_the_result() {
        let g = graph(90, 6, 5);
        let p = Partition::new(&g, 4).unwrap();
        let mut forward = ShardedMixingEngine::one_walker_per_node(&g, &p, 11).unwrap();
        let mut backward = ShardedMixingEngine::one_walker_per_node(&g, &p, 11).unwrap();
        let mut rotated = ShardedMixingEngine::one_walker_per_node(&g, &p, 11).unwrap();
        for _ in 0..15 {
            forward.step(0.1, &mut ());
            backward.step_in_order(0.1, &[3, 2, 1, 0], &mut ());
            rotated.step_in_order(0.1, &[2, 3, 0, 1], &mut ());
        }
        assert_eq!(forward.positions(), backward.positions());
        assert_eq!(forward.positions(), rotated.positions());
        assert_eq!(forward.walkers_by_holder(), backward.walkers_by_holder());
        assert_eq!(forward.walkers_by_holder(), rotated.walkers_by_holder());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn step_in_order_rejects_non_permutations() {
        let g = graph(30, 4, 6);
        let p = Partition::new(&g, 2).unwrap();
        let mut engine = ShardedMixingEngine::one_walker_per_node(&g, &p, 1).unwrap();
        engine.step_in_order(0.0, &[0, 0], &mut ());
    }

    #[test]
    fn runs_depend_on_seed_but_not_on_anything_else() {
        let g = graph(100, 6, 7);
        let p = Partition::new(&g, 5).unwrap();
        let run = |seed: u64| {
            let mut engine = ShardedMixingEngine::one_walker_per_node(&g, &p, seed).unwrap();
            engine.run(WalkConfig::lazy(12, 0.15), &mut ()).unwrap();
            engine.positions().to_vec()
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }

    #[test]
    fn observer_sees_conserved_load_and_round_indices() {
        struct Checker {
            walkers: usize,
            rounds_seen: usize,
        }
        impl RoundObserver for Checker {
            fn on_round(&mut self, stats: &RoundStats<'_>) {
                self.rounds_seen += 1;
                assert_eq!(stats.round, self.rounds_seen);
                let total: u64 = stats.load.iter().map(|&l| l as u64).sum();
                assert_eq!(total as usize, self.walkers);
                let sent: u64 = stats.sent.iter().map(|&s| s as u64).sum();
                assert!(sent as usize <= self.walkers);
            }
        }
        let g = graph(80, 4, 8);
        let p = Partition::new(&g, 3).unwrap();
        let mut engine = ShardedMixingEngine::one_walker_per_node(&g, &p, 9).unwrap();
        let mut checker = Checker {
            walkers: 80,
            rounds_seen: 0,
        };
        engine.run(WalkConfig::lazy(10, 0.1), &mut checker).unwrap();
        assert_eq!(checker.rounds_seen, 10);
    }

    #[test]
    fn one_shard_masked_is_bitwise_the_single_engine_masked_path() {
        let g = graph(140, 6, 10);
        let p = Partition::single_shard(&g).unwrap();
        let mask: Vec<bool> = (0..140).map(|u| u % 4 != 0).collect();
        for laziness in [0.0, 0.3] {
            let mut sharded = ShardedMixingEngine::one_walker_per_node(&g, &p, 55).unwrap();
            let mut single = MixingEngine::one_walker_per_node(&g).unwrap();
            let mut rng = shard_stream(55, 0);
            for _ in 0..18 {
                sharded.step_masked(laziness, &mask, &mut ());
                single.step_holder_masked(laziness, &mask, &mut rng, &mut ());
            }
            assert_eq!(sharded.positions(), single.positions());
            assert_eq!(sharded.walkers_by_holder(), single.walkers_by_holder());
            use rand::Rng;
            let a: u64 = sharded.shard_rng_mut(0).gen();
            let b: u64 = rng.gen();
            assert_eq!(a, b, "RNG stream diverged under the mask");
        }
    }

    #[test]
    fn all_available_mask_is_bitwise_the_unmasked_sharded_round() {
        let g = graph(120, 4, 11);
        let p = Partition::new(&g, 4).unwrap();
        let mask = vec![true; 120];
        let mut masked = ShardedMixingEngine::one_walker_per_node(&g, &p, 77).unwrap();
        let mut plain = ShardedMixingEngine::one_walker_per_node(&g, &p, 77).unwrap();
        for _ in 0..15 {
            masked.step_masked(0.2, &mask, &mut ());
            plain.step(0.2, &mut ());
        }
        assert_eq!(masked.positions(), plain.positions());
        assert_eq!(masked.walkers_by_holder(), plain.walkers_by_holder());
    }

    #[test]
    fn masked_rounds_never_deliver_to_dark_nodes_and_bounces_are_not_sent() {
        let g = graph(100, 4, 12);
        let p = Partition::new(&g, 3).unwrap();
        let mut mask = vec![true; 100];
        for slot in mask.iter_mut().skip(10) {
            *slot = false;
        }
        let mut engine = ShardedMixingEngine::one_walker_per_node(&g, &p, 21).unwrap();
        let before = engine.positions().to_vec();
        engine.step_masked(0.0, &mask, &mut ());
        for (walker, (&now, &was)) in engine.positions().iter().zip(&before).enumerate() {
            assert!(
                mask[now as usize] || now == was,
                "walker {walker} was delivered to dark node {now}"
            );
        }
        // The totally-dark network freezes everyone, and no bounced walker
        // is counted as traffic.
        let dark = vec![false; 100];
        let frozen = engine.positions().to_vec();
        struct NoTraffic;
        impl RoundObserver for NoTraffic {
            fn on_round(&mut self, stats: &RoundStats<'_>) {
                assert_eq!(stats.sent.iter().sum::<u32>(), 0);
            }
        }
        engine.step_masked(0.3, &dark, &mut NoTraffic);
        assert_eq!(engine.positions(), frozen.as_slice());
    }

    #[test]
    fn masked_sampling_order_does_not_change_the_result() {
        let g = graph(90, 6, 13);
        let p = Partition::new(&g, 4).unwrap();
        let mask: Vec<bool> = (0..90).map(|u| u % 5 != 2).collect();
        let mut forward = ShardedMixingEngine::one_walker_per_node(&g, &p, 31).unwrap();
        let mut backward = ShardedMixingEngine::one_walker_per_node(&g, &p, 31).unwrap();
        for _ in 0..12 {
            forward.step_masked(0.1, &mask, &mut ());
            backward.step_masked_in_order(0.1, &mask, &[3, 2, 1, 0], &mut ());
        }
        assert_eq!(forward.positions(), backward.positions());
        assert_eq!(forward.walkers_by_holder(), backward.walkers_by_holder());
    }

    #[test]
    fn checkpoint_restore_continues_bitwise_in_both_draw_modes() {
        let g = graph(130, 6, 17);
        for k in [1usize, 4] {
            let p = if k == 1 {
                Partition::single_shard(&g).unwrap()
            } else {
                Partition::new(&g, k).unwrap()
            };
            let mask: Vec<bool> = (0..130).map(|u| u % 7 != 3).collect();
            for mode in [DrawMode::Compat, DrawMode::Fast] {
                let mut reference = ShardedMixingEngine::one_walker_per_node(&g, &p, 404).unwrap();
                reference.set_draw_mode(mode);
                for _ in 0..9 {
                    reference.step(0.2, &mut ());
                }
                let cp = reference.checkpoint();
                assert_eq!(cp.round, 9);
                assert_eq!(cp.draw_mode, mode);
                let mut restored = ShardedMixingEngine::restore_checkpoint(&g, &p, &cp).unwrap();
                assert_eq!(restored.round(), 9);
                // Mix plain and masked rounds after the restore point.
                for r in 0..10 {
                    if r % 3 == 0 {
                        reference.step_masked(0.2, &mask, &mut ());
                        restored.step_masked(0.2, &mask, &mut ());
                    } else {
                        reference.step(0.2, &mut ());
                        restored.step(0.2, &mut ());
                    }
                    assert_eq!(reference.positions(), restored.positions());
                }
                assert_eq!(reference.walkers_by_holder(), restored.walkers_by_holder());
                for s in 0..k {
                    assert_eq!(reference.rng_clock(s), restored.rng_clock(s));
                    use rand::Rng;
                    let a: u64 = reference.shard_rng_mut(s).gen();
                    let b: u64 = restored.shard_rng_mut(s).gen();
                    assert_eq!(a, b, "shard {s} RNG stream diverged after restore");
                }
            }
        }
    }

    #[test]
    fn restore_checkpoint_rejects_inconsistent_state() {
        let g = graph(60, 4, 18);
        let p = Partition::new(&g, 3).unwrap();
        let mut engine = ShardedMixingEngine::one_walker_per_node(&g, &p, 5).unwrap();
        engine.step(0.1, &mut ());
        let cp = engine.checkpoint();
        // Wrong shard count.
        let p1 = Partition::single_shard(&g).unwrap();
        assert!(ShardedMixingEngine::restore_checkpoint(&g, &p1, &cp).is_err());
        // Position out of range.
        let mut bad = cp.clone();
        bad.positions[0] = 60;
        assert!(ShardedMixingEngine::restore_checkpoint(&g, &p, &bad).is_err());
        // A walker moved without its bucket slot moving: position/bucket
        // cross-check must catch it.
        let mut bad = cp.clone();
        let w = bad.shards[0].bucket_walkers[0] as usize;
        let old = bad.positions[w];
        bad.positions[w] = if old == 0 { 1 } else { 0 };
        assert!(ShardedMixingEngine::restore_checkpoint(&g, &p, &bad).is_err());
        // Duplicated walker.
        let mut bad = cp.clone();
        let first = bad.shards[0].bucket_walkers[0];
        *bad.shards[0].bucket_walkers.last_mut().unwrap() = first;
        assert!(ShardedMixingEngine::restore_checkpoint(&g, &p, &bad).is_err());
        // Broken CSR.
        let mut bad = cp.clone();
        bad.shards[1].bucket_starts[0] = 1;
        assert!(ShardedMixingEngine::restore_checkpoint(&g, &p, &bad).is_err());
        // The untouched checkpoint still restores.
        assert!(ShardedMixingEngine::restore_checkpoint(&g, &p, &cp).is_ok());
    }

    #[test]
    fn retarget_switches_topology_between_rounds() {
        let ring = generators::cycle(24).unwrap();
        let full = generators::complete(24).unwrap();
        let p = Partition::new(&ring, 3).unwrap();
        let mut engine = ShardedMixingEngine::one_walker_per_node(&ring, &p, 41).unwrap();
        engine.step(0.0, &mut ());
        for (walker, &pos) in engine.positions().iter().enumerate() {
            assert!(ring.neighbors(walker).contains(&pos));
        }
        engine.retarget(&full).unwrap();
        assert_eq!(engine.round(), 1);
        engine.step(0.0, &mut ());
        assert_eq!(engine.round(), 2);
        assert!(engine.positions().iter().all(|&pos| pos < 24));
        // Mismatched node counts and isolated nodes are rejected.
        let small = generators::cycle(5).unwrap();
        assert!(engine.retarget(&small).is_err());
        let isolated = Graph::from_edges(24, &[(0, 1)]).unwrap();
        assert!(engine.retarget(&isolated).is_err());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn threaded_masked_step_is_bitwise_equal_to_sequential() {
        let g = graph(300, 8, 14);
        let p = Partition::new(&g, 5).unwrap();
        let mask: Vec<bool> = (0..300).map(|u| u % 6 != 0).collect();
        let mut sequential = ShardedMixingEngine::one_walker_per_node(&g, &p, 61).unwrap();
        let mut threaded = ShardedMixingEngine::one_walker_per_node(&g, &p, 61).unwrap();
        for _ in 0..10 {
            sequential.step_masked(0.2, &mask, &mut ());
            threaded.step_masked_threaded(0.2, &mask, &mut ());
        }
        assert_eq!(sequential.positions(), threaded.positions());
        assert_eq!(sequential.walkers_by_holder(), threaded.walkers_by_holder());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn threaded_step_is_bitwise_equal_to_sequential() {
        let g = graph(400, 8, 9);
        let p = Partition::new(&g, 6).unwrap();
        let mut sequential = ShardedMixingEngine::one_walker_per_node(&g, &p, 33).unwrap();
        let mut threaded = ShardedMixingEngine::one_walker_per_node(&g, &p, 33).unwrap();
        for _ in 0..12 {
            sequential.step(0.2, &mut ());
            threaded.step_threaded(0.2, &mut ());
        }
        assert_eq!(sequential.positions(), threaded.positions());
        assert_eq!(sequential.walkers_by_holder(), threaded.walkers_by_holder());
    }
}
