//! Deterministic graph families with closed-form spectra and degree
//! statistics, used throughout the test suite as ground truth.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// The cycle `C_n` (a 2-regular ring).
///
/// Connected for `n ≥ 3`; bipartite iff `n` is even.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameters(format!(
            "cycle requires n >= 3, got {n}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n)?;
    }
    Ok(b.build())
}

/// The path `P_n` (`n` nodes in a line).
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `n < 2`.
pub fn path(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "path requires n >= 2, got {n}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.add_edge(i, i + 1)?;
    }
    Ok(b.build())
}

/// The complete graph `K_n`.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `n < 2`.
pub fn complete(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "complete requires n >= 2, got {n}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j)?;
        }
    }
    Ok(b.build())
}

/// The star `S_n`: node 0 is the hub, nodes `1..n` are leaves.
///
/// Maximally irregular among connected graphs of its size
/// (`Γ_G = n² / 4(n−1)`), and bipartite.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "star requires n >= 2, got {n}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i)?;
    }
    Ok(b.build())
}

/// The circulant graph: node `i` is connected to `i ± 1, …, i ± k/2 (mod n)`.
///
/// A deterministic k-regular graph (for even `k`), useful when a reproducible
/// regular topology is needed; note its spectral gap is much smaller than a
/// random regular graph's, so mixing is slow.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `k` is odd, `k == 0`, or `k >= n`.
pub fn circulant(n: usize, k: usize) -> Result<Graph> {
    if k == 0 || !k.is_multiple_of(2) {
        return Err(GraphError::InvalidParameters(format!(
            "circulant requires a positive even degree, got {k}"
        )));
    }
    if k >= n {
        return Err(GraphError::InvalidParameters(format!(
            "circulant requires k < n, got k = {k}, n = {n}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for offset in 1..=(k / 2) {
            b.add_edge(i, (i + offset) % n)?;
        }
    }
    Ok(b.build())
}

/// A circulant graph over an explicit stride set: node `i` is connected to
/// `i ± s (mod n)` for every stride `s` in `strides`.
///
/// Two differences from [`circulant`] make this the topology of the
/// memory-bound round-loop benchmark:
///
/// * **Far gathers.**  [`circulant`]'s strides are the contiguous
///   `1..=k/2`, so every neighbour row sits next to its node and the CSR
///   gather stays cache-local.  Large strides (e.g. primes near `n / 3`)
///   spread each row across the whole position array, which is what makes
///   a multi-million-node round genuinely DRAM-bound.
/// * **Direct CSR construction.**  Rows are written straight into the CSR
///   arrays in `O(n · k)` with one scratch row — no per-node adjacency
///   `Vec`s — so 10M-node instances build in seconds instead of fighting
///   the edge-by-edge builder's allocation storm.
///
/// The graph is connected iff `gcd(n, s_1, …, s_k) == 1` (e.g. whenever
/// stride `1` is included) and k-regular with `k = 2 · strides.len()`
/// whenever all strides and their complements are distinct mod `n`
/// (duplicate endpoints are collapsed).
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `n < 3`, `n` exceeds the u32 node
/// cap, `strides` is empty, or a stride is `0 (mod n)` (a self-loop).
pub fn strided_circulant(n: usize, strides: &[usize]) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameters(format!(
            "strided_circulant requires n >= 3, got {n}"
        )));
    }
    if n > u32::MAX as usize {
        return Err(GraphError::InvalidParameters(format!(
            "graphs are limited to 2^32 - 1 nodes, got {n}"
        )));
    }
    if strides.is_empty() {
        return Err(GraphError::InvalidParameters(
            "strided_circulant requires at least one stride".into(),
        ));
    }
    if let Some(&bad) = strides.iter().find(|&&s| s % n == 0) {
        return Err(GraphError::InvalidParameters(format!(
            "stride {bad} is 0 mod {n}, which would be a self-loop"
        )));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut neighbors: Vec<u32> = Vec::with_capacity(2 * strides.len() * n);
    let mut row: Vec<u32> = Vec::with_capacity(2 * strides.len());
    offsets.push(0usize);
    for u in 0..n {
        row.clear();
        for &s in strides {
            let s = s % n;
            row.push(((u + s) % n) as u32);
            row.push(((u + n - s) % n) as u32);
        }
        row.sort_unstable();
        row.dedup();
        neighbors.extend_from_slice(&row);
        offsets.push(neighbors.len());
    }
    Ok(Graph::from_csr(offsets, neighbors))
}

/// A "two-degree-class" graph: `n_low` nodes of (approximate) degree `k_low`
/// interleaved with `n_high` hubs of higher degree, wired deterministically.
///
/// Construction: all nodes are placed on a ring (so the graph is connected
/// and 2-regular to start with); every hub is then additionally connected to
/// `extra` evenly-spaced non-hub nodes.  This produces a connected,
/// non-bipartite graph whose irregularity `Γ_G` can be dialled far above 1,
/// which is what the Figure 8 parameter sweep needs without invoking a random
/// generator.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] on degenerate sizes.
pub fn two_degree_class(n: usize, hub_count: usize, extra_per_hub: usize) -> Result<Graph> {
    if n < 4 {
        return Err(GraphError::InvalidParameters(format!(
            "two_degree_class requires n >= 4, got {n}"
        )));
    }
    if hub_count == 0 || hub_count > n / 2 {
        return Err(GraphError::InvalidParameters(format!(
            "hub_count must be in 1..=n/2, got {hub_count}"
        )));
    }
    if extra_per_hub == 0 || extra_per_hub >= n {
        return Err(GraphError::InvalidParameters(format!(
            "extra_per_hub must be in 1..n, got {extra_per_hub}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    // Base ring keeps the graph connected.
    for i in 0..n {
        b.add_edge(i, (i + 1) % n)?;
    }
    // A triangle chord makes it non-bipartite even when n is even.
    b.add_edge(0, 2).ok();
    // Hubs are the first `hub_count` nodes; each connects to evenly spaced
    // targets.
    for h in 0..hub_count {
        let hub = h * (n / hub_count);
        for j in 1..=extra_per_hub {
            let target = (hub + 2 + j * (n / (extra_per_hub + 1))) % n;
            if target != hub && !b.has_edge(hub, target) {
                b.add_edge(hub, target)?;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_properties() {
        let g = cycle(7).unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 7);
        assert!(g.is_regular());
        assert!(g.is_connected());
        assert!(!g.is_bipartite());
        assert!(cycle(2).is_err());
    }

    #[test]
    fn path_properties() {
        let g = path(5).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
        assert!(g.is_bipartite());
        assert!(path(1).is_err());
    }

    #[test]
    fn complete_properties() {
        let g = complete(6).unwrap();
        assert_eq!(g.edge_count(), 15);
        assert!(g.is_regular());
        assert_eq!(g.degree(3), 5);
        assert!(complete(1).is_err());
    }

    #[test]
    fn star_properties() {
        let g = star(9).unwrap();
        assert_eq!(g.degree(0), 8);
        assert_eq!(g.degree(5), 1);
        assert!(g.is_bipartite());
        assert!(star(1).is_err());
    }

    #[test]
    fn circulant_is_regular_and_connected() {
        let g = circulant(20, 6).unwrap();
        assert!(g.is_regular());
        assert_eq!(g.degree(0), 6);
        assert!(g.is_connected());
        assert!(circulant(10, 5).is_err());
        assert!(circulant(10, 0).is_err());
        assert!(circulant(4, 6).is_err());
    }

    #[test]
    fn strided_circulant_matches_the_builder_circulant() {
        // Contiguous strides 1..=k/2 are exactly the classic circulant.
        let direct = strided_circulant(20, &[1, 2, 3]).unwrap();
        let built = circulant(20, 6).unwrap();
        assert_eq!(direct.node_count(), built.node_count());
        assert_eq!(direct.edge_count(), built.edge_count());
        for u in 0..20 {
            assert_eq!(direct.neighbors(u), built.neighbors(u), "row {u}");
        }
    }

    #[test]
    fn strided_circulant_with_far_strides_is_regular_and_connected() {
        let g = strided_circulant(101, &[1, 29, 43]).unwrap();
        assert!(g.is_regular());
        assert_eq!(g.degree(0), 6);
        assert!(g.is_connected());
        // Coincident endpoints collapse (2s ≡ 0 mod n): still a simple graph.
        let h = strided_circulant(10, &[5]).unwrap();
        assert_eq!(h.degree(0), 1);
        assert!(strided_circulant(2, &[1]).is_err());
        assert!(strided_circulant(10, &[]).is_err());
        assert!(strided_circulant(10, &[10]).is_err());
    }

    #[test]
    fn two_degree_class_raises_irregularity() {
        let g = two_degree_class(200, 5, 20).unwrap();
        assert!(g.is_connected());
        assert!(!g.is_bipartite());
        let stats = crate::degree::DegreeStats::compute(&g).unwrap();
        assert!(stats.irregularity > 1.3, "Gamma = {}", stats.irregularity);
        assert!(two_degree_class(3, 1, 1).is_err());
        assert!(two_degree_class(10, 0, 1).is_err());
        assert!(two_degree_class(10, 2, 0).is_err());
    }
}
