//! The dataset catalogue: Table 4 targets and calibrated generators.

use ns_graph::connectivity::largest_connected_component;
use ns_graph::degree::DegreeStats;
use ns_graph::generators::chung_lu;
use ns_graph::rng::derived_rng;
use ns_graph::{Graph, GraphError};
use serde::{Deserialize, Serialize};

/// The five real-world networks of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Facebook page–page network (social), `n = 22,470`, `Γ_G = 5.0064`.
    Facebook,
    /// Twitch social network, `n = 9,498`, `Γ_G = 7.5840`.
    Twitch,
    /// Deezer user network (social), `n = 28,281`, `Γ_G = 3.5633`.
    Deezer,
    /// Enron e-mail communication graph, `n = 33,696`, `Γ_G = 36.866`.
    Enron,
    /// Google web graph, `n = 855,802`, `Γ_G = 20.642`.
    Google,
}

impl Dataset {
    /// All datasets, in the order of Table 4.
    pub const ALL: [Dataset; 5] = [
        Dataset::Facebook,
        Dataset::Twitch,
        Dataset::Deezer,
        Dataset::Enron,
        Dataset::Google,
    ];

    /// The calibration targets taken from Table 4 of the paper.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::Facebook => DatasetSpec {
                name: "Facebook",
                category: "social network",
                node_count: 22_470,
                irregularity: 5.0064,
                mean_degree: 15.0,
            },
            Dataset::Twitch => DatasetSpec {
                name: "Twitch",
                category: "social network",
                node_count: 9_498,
                irregularity: 7.5840,
                mean_degree: 10.0,
            },
            Dataset::Deezer => DatasetSpec {
                name: "Deezer",
                category: "social network",
                node_count: 28_281,
                irregularity: 3.5633,
                mean_degree: 7.0,
            },
            Dataset::Enron => DatasetSpec {
                name: "Enron",
                category: "communication",
                node_count: 33_696,
                irregularity: 36.866,
                mean_degree: 10.0,
            },
            Dataset::Google => DatasetSpec {
                name: "Google",
                category: "web",
                node_count: 855_802,
                irregularity: 20.642,
                mean_degree: 10.0,
            },
        }
    }

    /// Generates the full-scale stand-in graph.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn generate(&self, seed: u64) -> Result<GeneratedDataset, GraphError> {
        self.generate_scaled(1, seed)
    }

    /// Generates a stand-in graph with `n / scale_divisor` nodes (same target
    /// `Γ_G`).  Scaling down is useful for CI and for the Google graph,
    /// whose full-scale version takes noticeably longer to build and analyse.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the divisor is zero or leaves
    /// fewer than 100 nodes; otherwise propagates generator errors.
    pub fn generate_scaled(
        &self,
        scale_divisor: usize,
        seed: u64,
    ) -> Result<GeneratedDataset, GraphError> {
        let spec = self.spec();
        if scale_divisor == 0 {
            return Err(GraphError::InvalidParameters(
                "scale divisor must be positive".into(),
            ));
        }
        let target_n = spec.node_count / scale_divisor;
        if target_n < 100 {
            return Err(GraphError::InvalidParameters(format!(
                "scale divisor {scale_divisor} leaves only {target_n} nodes"
            )));
        }
        let graph = generate_with_targets(
            target_n,
            spec.irregularity,
            spec.mean_degree,
            seed ^ dataset_seed(spec.name),
        )?;
        let stats = DegreeStats::compute(&graph).ok_or(GraphError::EmptyGraph)?;
        Ok(GeneratedDataset {
            dataset: *self,
            spec,
            graph,
            achieved: stats,
        })
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Calibration targets for one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Network category ("social network", "communication", "web").
    pub category: &'static str,
    /// Number of nodes of the largest connected component (Table 4).
    pub node_count: usize,
    /// Irregularity `Γ_G` of the largest connected component (Table 4).
    pub irregularity: f64,
    /// Mean degree assumed for the synthetic stand-in (not reported in
    /// Table 4; chosen to be in the typical range for the network category —
    /// it does not enter the privacy bounds).
    pub mean_degree: f64,
}

/// A generated stand-in graph together with what was asked for and what was
/// achieved.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Which dataset this stands in for.
    pub dataset: Dataset,
    /// The calibration targets.
    pub spec: DatasetSpec,
    /// The generated graph (largest connected component, non-bipartite).
    pub graph: Graph,
    /// Degree statistics of the generated graph.
    pub achieved: DegreeStats,
}

impl GeneratedDataset {
    /// Relative error of the achieved irregularity vs. the Table 4 target.
    pub fn irregularity_error(&self) -> f64 {
        (self.achieved.irregularity - self.spec.irregularity).abs() / self.spec.irregularity
    }

    /// Relative shortfall of the achieved node count vs. the requested one
    /// (nodes are lost when restricting to the largest connected component).
    pub fn node_count_shortfall(&self) -> f64 {
        let requested = self.spec.node_count as f64;
        (requested - self.achieved.node_count as f64).max(0.0) / requested
    }
}

/// Generates a connected, non-bipartite graph with (approximately) the given
/// node count, irregularity `Γ_G` and mean degree, using a two-point
/// Chung–Lu expected-degree sequence.
///
/// The calibration works as follows.  For a Chung–Lu graph the realized
/// degrees are approximately Poisson with mean equal to the node's weight,
/// so `⟨k²⟩ ≈ ⟨w²⟩ + ⟨w⟩` and the degree irregularity is
/// `Γ_k ≈ Γ_w + 1/⟨w⟩`.  We therefore pick a two-point weight distribution
/// (a small fraction of "hub" weight `b`, the rest at a base weight `a`)
/// whose weight irregularity `Γ_w` hits `Γ_G − 1/⟨w⟩`, scanning the hub
/// fraction over a grid and keeping hub weights feasible for the Chung–Lu
/// edge-probability cap.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if no feasible calibration exists for
/// the requested targets.
pub fn generate_with_targets(
    node_count: usize,
    irregularity: f64,
    mean_degree: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    if node_count < 100 {
        return Err(GraphError::InvalidParameters(format!(
            "dataset generation requires at least 100 nodes, got {node_count}"
        )));
    }
    if irregularity < 1.0 {
        return Err(GraphError::InvalidParameters(format!(
            "irregularity must be at least 1, got {irregularity}"
        )));
    }
    if mean_degree <= 2.0 {
        return Err(GraphError::InvalidParameters(format!(
            "mean degree must exceed 2 for a connected stand-in, got {mean_degree}"
        )));
    }

    let weights = calibrate_two_point_weights(node_count, irregularity, mean_degree)?;
    let mut rng = derived_rng(seed, "dataset-chung-lu");
    let raw = chung_lu(&weights, &mut rng)?;
    let (lcc, _) = largest_connected_component(&raw);
    if lcc.node_count() < node_count / 2 {
        return Err(GraphError::InvalidParameters(format!(
            "largest connected component has only {} of {node_count} nodes; \
             increase the mean degree",
            lcc.node_count()
        )));
    }
    // Chung–Lu graphs with these densities are never bipartite in practice,
    // but the accountant requires it, so fail loudly if it ever happens.
    if lcc.is_bipartite() {
        return Err(GraphError::Bipartite);
    }
    Ok(lcc)
}

/// Solves for a two-point expected-degree sequence hitting the requested
/// irregularity.
fn calibrate_two_point_weights(
    node_count: usize,
    irregularity: f64,
    mean_degree: f64,
) -> Result<Vec<f64>, GraphError> {
    let n = node_count as f64;
    let mu = mean_degree;
    // Poisson correction: the weight irregularity to target.
    let gamma_w = (irregularity - 1.0 / mu).max(1.0);
    // Feasibility cap on the hub weight for the Chung–Lu probability
    // min(1, w_i w_j / sum w): keep hub * base below sum(w) so expected
    // degrees track weights.
    let cap = (n * mu).sqrt();

    let mut best: Option<(f64, Vec<f64>)> = None;
    for base_step in 1..=8 {
        // Base (non-hub) expected degree, scanned from 0.2·mu to 0.9·mu.
        let base = (0.1 + 0.1 * base_step as f64) * mu;
        for step in 1..1_000 {
            let hub_fraction = step as f64 / 1_000.0 * 0.5;
            let hub_count = ((n * hub_fraction).round() as usize).max(1);
            let f = hub_count as f64 / n;
            let hub_weight = (mu - (1.0 - f) * base) / f;
            if hub_weight <= base || hub_weight > cap {
                continue;
            }
            let second_moment = (1.0 - f) * base * base + f * hub_weight * hub_weight;
            let achieved_gamma_w = second_moment / (mu * mu);
            let error = (achieved_gamma_w - gamma_w).abs() / gamma_w;
            if best.as_ref().is_none_or(|(best_err, _)| error < *best_err) {
                let mut weights = vec![base; node_count];
                for w in weights.iter_mut().take(hub_count) {
                    *w = hub_weight;
                }
                best = Some((error, weights));
            }
        }
    }

    match best {
        Some((error, weights)) if error < 0.25 => Ok(weights),
        Some((error, _)) => Err(GraphError::InvalidParameters(format!(
            "could not calibrate weights for Gamma = {irregularity} at mean degree {mean_degree} \
             (best relative error {error:.2})"
        ))),
        None => Err(GraphError::InvalidParameters(format!(
            "no feasible hub weight for Gamma = {irregularity} at mean degree {mean_degree} \
             and n = {node_count}"
        ))),
    }
}

/// Mixes the dataset name into the seed so different datasets generated from
/// the same user seed are decorrelated.
fn dataset_seed(name: &str) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_4() {
        assert_eq!(Dataset::Facebook.spec().node_count, 22_470);
        assert!((Dataset::Facebook.spec().irregularity - 5.0064).abs() < 1e-9);
        assert_eq!(Dataset::Twitch.spec().node_count, 9_498);
        assert_eq!(Dataset::Deezer.spec().node_count, 28_281);
        assert_eq!(Dataset::Enron.spec().node_count, 33_696);
        assert_eq!(Dataset::Google.spec().node_count, 855_802);
        assert!((Dataset::Google.spec().irregularity - 20.642).abs() < 1e-9);
        assert_eq!(Dataset::ALL.len(), 5);
        assert_eq!(Dataset::Twitch.to_string(), "Twitch");
    }

    #[test]
    fn scaled_twitch_hits_its_targets() {
        let generated = Dataset::Twitch.generate_scaled(4, 1).unwrap();
        // Node count: within 10% of the scaled target (losses to the LCC).
        assert!(generated.node_count_shortfall() < 0.1 || generated.achieved.node_count > 2_000);
        assert!(
            generated.irregularity_error() < 0.25,
            "Gamma achieved {} vs target {}",
            generated.achieved.irregularity,
            generated.spec.irregularity
        );
        assert!(generated.graph.is_connected());
        assert!(!generated.graph.is_bipartite());
    }

    #[test]
    fn scaled_enron_reaches_high_irregularity() {
        // Enron's Gamma of ~37 needs hub degrees around 37 * <k>, which a
        // Chung-Lu stand-in can only support with enough nodes; divisor 2
        // keeps the test fast while staying in the feasible regime.
        let generated = Dataset::Enron.generate_scaled(2, 2).unwrap();
        assert!(
            generated.achieved.irregularity > 20.0,
            "Gamma achieved {}",
            generated.achieved.irregularity
        );
        assert!(generated.graph.is_connected());
    }

    #[test]
    fn scaled_deezer_is_close_to_regular() {
        let generated = Dataset::Deezer.generate_scaled(8, 3).unwrap();
        assert!(
            (generated.achieved.irregularity - 3.5633).abs() / 3.5633 < 0.3,
            "Gamma achieved {}",
            generated.achieved.irregularity
        );
    }

    #[test]
    fn scale_divisor_validation() {
        assert!(Dataset::Twitch.generate_scaled(0, 1).is_err());
        assert!(Dataset::Twitch.generate_scaled(1_000, 1).is_err());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Dataset::Facebook.generate_scaled(10, 7).unwrap();
        let b = Dataset::Facebook.generate_scaled(10, 7).unwrap();
        assert_eq!(a.graph, b.graph);
        let c = Dataset::Facebook.generate_scaled(10, 8).unwrap();
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn target_generator_validates_inputs() {
        assert!(generate_with_targets(50, 5.0, 10.0, 1).is_err());
        assert!(generate_with_targets(1_000, 0.5, 10.0, 1).is_err());
        assert!(generate_with_targets(1_000, 5.0, 1.0, 1).is_err());
    }

    #[test]
    fn custom_targets_are_respected() {
        let g = generate_with_targets(3_000, 6.0, 12.0, 9).unwrap();
        let stats = DegreeStats::compute(&g).unwrap();
        assert!(
            (stats.irregularity - 6.0).abs() / 6.0 < 0.3,
            "Gamma = {}",
            stats.irregularity
        );
        assert!(g.is_connected());
    }
}
