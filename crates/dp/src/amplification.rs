//! Privacy-amplification baselines compared against network shuffling in
//! Table 1 of the paper.
//!
//! Table 1 reports asymptotic orders; for the reproduction harness we need
//! concrete numbers, so each baseline is implemented as a *documented,
//! representative closed form* from the cited literature:
//!
//! | Mechanism | Order (Table 1) | Closed form implemented here |
//! |---|---|---|
//! | No amplification | `ε₀` | `ε₀` |
//! | Uniform subsampling (rate `q`) | `O(e^{ε₀}/√n)` | `log(1 + q (e^{ε₀} − 1))` |
//! | Uniform shuffling (Erlingsson et al.) | `O(e^{3ε₀}/√n)` | `min(ε₀, 12 ε₀ e^{3ε₀} √(log(4/δ)/n))` |
//! | Uniform shuffling with clones (Feldman et al.) | `O(e^{0.5ε₀}/√n)` | FMT'21 Theorem 3.1 closed form, capped at `ε₀` |
//!
//! Absolute constants differ between papers and revisions; what the
//! benchmark harness relies on (and what EXPERIMENTS.md reports) is the
//! *shape*: ordering of the mechanisms and the `1/√n` scaling, both of which
//! these forms reproduce.

use crate::types::{validate_delta, validate_positive_epsilon, DpError, Result};

/// No amplification: the central guarantee equals the local `ε₀`.
pub fn no_amplification(epsilon_0: f64) -> Result<f64> {
    validate_positive_epsilon(epsilon_0)
}

/// Privacy amplification by subsampling at rate `q ∈ (0, 1]`:
/// `ε = log(1 + q (e^{ε₀} − 1))`.
///
/// # Errors
///
/// [`DpError::InvalidParameters`] if `q ∉ (0, 1]`;
/// [`DpError::InvalidEpsilon`] if `ε₀ ≤ 0`.
pub fn subsampling_epsilon(epsilon_0: f64, q: f64) -> Result<f64> {
    let epsilon_0 = validate_positive_epsilon(epsilon_0)?;
    if !(0.0..=1.0).contains(&q) || q == 0.0 {
        return Err(DpError::InvalidParameters(format!(
            "sampling rate must be in (0, 1], got {q}"
        )));
    }
    Ok((1.0 + q * (epsilon_0.exp() - 1.0)).ln())
}

/// Uniform-shuffling amplification in the style of Erlingsson et al.
/// (SODA 2019): `ε = 12 ε₀ e^{3ε₀} √(log(4/δ)/n)`, capped at `ε₀`
/// (amplification never hurts).
///
/// # Errors
///
/// Validation of `ε₀`, `δ` and `n ≥ 2`.
pub fn erlingsson_shuffling_epsilon(epsilon_0: f64, n: usize, delta: f64) -> Result<f64> {
    let epsilon_0 = validate_positive_epsilon(epsilon_0)?;
    let delta = validate_delta(delta)?;
    if n < 2 {
        return Err(DpError::InvalidParameters(format!(
            "n must be at least 2, got {n}"
        )));
    }
    let amplified =
        12.0 * epsilon_0 * (3.0 * epsilon_0).exp() * ((4.0 / delta).ln() / n as f64).sqrt();
    Ok(amplified.min(epsilon_0))
}

/// Uniform-shuffling amplification via the "hiding among the clones"
/// analysis of Feldman, McMillan and Talwar (FOCS 2021, Theorem 3.1):
///
/// ```text
/// ε = log(1 + (e^{ε₀} − 1)/(e^{ε₀} + 1) · (8 √(e^{ε₀} log(4/δ)) / √n + 8 e^{ε₀} / n))
/// ```
///
/// valid for `ε₀ ≤ log(n / (16 log(2/δ)))`; outside that range the function
/// conservatively reports `ε₀` (no amplification claimed).  The result is
/// always capped at `ε₀`.
///
/// # Errors
///
/// Validation of `ε₀`, `δ` and `n ≥ 2`.
pub fn clones_shuffling_epsilon(epsilon_0: f64, n: usize, delta: f64) -> Result<f64> {
    let epsilon_0 = validate_positive_epsilon(epsilon_0)?;
    let delta = validate_delta(delta)?;
    if n < 2 {
        return Err(DpError::InvalidParameters(format!(
            "n must be at least 2, got {n}"
        )));
    }
    let nf = n as f64;
    let validity_bound = (nf / (16.0 * (2.0 / delta).ln())).ln();
    if epsilon_0 > validity_bound {
        return Ok(epsilon_0);
    }
    let e = epsilon_0.exp();
    let factor = (e - 1.0) / (e + 1.0);
    let inner = 8.0 * (e * (4.0 / delta).ln()).sqrt() / nf.sqrt() + 8.0 * e / nf;
    Ok((1.0 + factor * inner).ln().min(epsilon_0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DELTA: f64 = 1e-6;

    #[test]
    fn no_amplification_is_identity() {
        assert_eq!(no_amplification(0.7).unwrap(), 0.7);
        assert!(no_amplification(0.0).is_err());
    }

    #[test]
    fn subsampling_matches_closed_form_and_validates() {
        let eps = subsampling_epsilon(1.0, 0.01).unwrap();
        let expected = (1.0 + 0.01 * (1.0f64.exp() - 1.0)).ln();
        assert!((eps - expected).abs() < 1e-12);
        // q = 1 means no amplification.
        assert!((subsampling_epsilon(1.0, 1.0).unwrap() - 1.0).abs() < 1e-12);
        assert!(subsampling_epsilon(1.0, 0.0).is_err());
        assert!(subsampling_epsilon(1.0, 1.5).is_err());
        assert!(subsampling_epsilon(0.0, 0.5).is_err());
    }

    #[test]
    fn shuffling_baselines_amplify_at_moderate_epsilon() {
        let n = 100_000;
        let eps0 = 0.5;
        let erlingsson = erlingsson_shuffling_epsilon(eps0, n, DELTA).unwrap();
        let clones = clones_shuffling_epsilon(eps0, n, DELTA).unwrap();
        assert!(erlingsson < eps0);
        assert!(clones < eps0);
        // Clones analysis is strictly tighter.
        assert!(
            clones < erlingsson,
            "clones {clones} vs erlingsson {erlingsson}"
        );
    }

    #[test]
    fn amplification_improves_with_population_size() {
        let eps0 = 0.8;
        let small = clones_shuffling_epsilon(eps0, 1_000, DELTA).unwrap();
        let large = clones_shuffling_epsilon(eps0, 1_000_000, DELTA).unwrap();
        assert!(large < small);
        let small_e = erlingsson_shuffling_epsilon(eps0, 1_000, DELTA).unwrap();
        let large_e = erlingsson_shuffling_epsilon(eps0, 1_000_000, DELTA).unwrap();
        assert!(large_e <= small_e);
    }

    #[test]
    fn shuffling_baselines_scale_like_inverse_sqrt_n() {
        let eps0 = 0.4;
        let at_n = clones_shuffling_epsilon(eps0, 10_000, DELTA).unwrap();
        let at_4n = clones_shuffling_epsilon(eps0, 40_000, DELTA).unwrap();
        // Doubling sqrt(n) should roughly halve epsilon (the additive e/n term
        // makes it slightly better than exactly half).
        let ratio = at_n / at_4n;
        assert!((1.8..=2.4).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn amplified_epsilon_never_exceeds_local_epsilon() {
        for &eps0 in &[0.1, 0.5, 1.0, 2.0, 4.0] {
            for &n in &[100usize, 10_000, 1_000_000] {
                let e = erlingsson_shuffling_epsilon(eps0, n, DELTA).unwrap();
                let c = clones_shuffling_epsilon(eps0, n, DELTA).unwrap();
                assert!(e <= eps0 + 1e-12);
                assert!(c <= eps0 + 1e-12);
            }
        }
    }

    #[test]
    fn clones_falls_back_outside_validity_range() {
        // Tiny n with large eps0 violates the validity condition.
        let eps0 = 5.0;
        let got = clones_shuffling_epsilon(eps0, 100, DELTA).unwrap();
        assert_eq!(got, eps0);
    }

    #[test]
    fn validation_of_inputs() {
        assert!(erlingsson_shuffling_epsilon(1.0, 1, DELTA).is_err());
        assert!(erlingsson_shuffling_epsilon(1.0, 100, 0.0).is_err());
        assert!(clones_shuffling_epsilon(-1.0, 100, DELTA).is_err());
        assert!(clones_shuffling_epsilon(1.0, 100, 1.0).is_err());
    }
}
