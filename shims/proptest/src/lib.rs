//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The [`proptest!`] macro expands each property into an ordinary `#[test]`
//! that draws its arguments from range strategies with a ChaCha8 generator
//! seeded from the property's name, runs the configured number of cases, and
//! reports the first failing case (with its drawn arguments) via `panic!`.
//! There is no shrinking — the failing inputs are printed instead, which is
//! enough to reproduce (the generator is deterministic per property name).

#![forbid(unsafe_code)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Creates the deterministic per-property generator.
pub fn test_rng(property_name: &str) -> TestRng {
    // FNV-1a of the property name: stable, dependency-free.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in property_name.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(h)
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
    /// `prop_assert!`-style failure with a rendered message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// A source of random values for one macro argument.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, f64, f32);

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Expands properties into seeded randomized `#[test]`s.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(stringify!($name));
                let mut rejected: u32 = 0;
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample_value(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => rejected += 1,
                        Err($crate::TestCaseError::Fail(message)) => panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message,
                            format!(
                                concat!($(stringify!($arg), " = {:?}, "),+),
                                $($arg),+
                            ),
                        ),
                    }
                }
                assert!(
                    rejected < config.cases,
                    "property {}: every case was rejected by prop_assume!",
                    stringify!($name)
                );
            }
        )*
    };
    (
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[doc = $doc])*
                #[test]
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}
