//! End-to-end integration tests spanning every crate: dataset stand-in →
//! local randomization → network shuffling → curator aggregation →
//! privacy accounting.

use network_shuffle::prelude::*;
use ns_datasets::{Dataset, MeanEstimationWorkload, WorkloadConfig};
use ns_dp::estimators::estimate_frequencies;
use ns_dp::mechanisms::RandomizedResponse;

/// The full survey pipeline on a (scaled) Twitch stand-in: the curator's
/// frequency estimate is accurate, the central guarantee is amplified below
/// ε₀, and the adversary's linkage is near the 1/n baseline.
#[test]
fn survey_pipeline_on_twitch_standin() {
    let generated = Dataset::Twitch.generate_scaled(4, 3).expect("dataset");
    let graph = &generated.graph;
    let n = graph.node_count();
    assert!(n > 2_000, "stand-in should keep most nodes, got {n}");

    let epsilon_0 = 0.5;
    let randomizer = RandomizedResponse::new(3, epsilon_0).expect("mechanism");
    let truth: Vec<usize> = (0..n)
        .map(|i| {
            if i % 10 < 7 {
                0
            } else if i % 10 < 9 {
                1
            } else {
                2
            }
        })
        .collect();

    let accountant = NetworkShuffleAccountant::new(graph).expect("accountant");
    let rounds = accountant.mixing_time().min(400);
    let outcome = run_protocol_with_randomizer(
        graph,
        &truth,
        &randomizer,
        SimulationConfig::all(rounds, 77),
        &0usize,
    )
    .expect("simulation");

    // Report conservation.
    assert_eq!(outcome.collected.report_count(), n);

    // Utility: frequency estimation recovers the skewed distribution.
    let reports: Vec<usize> = outcome
        .collected
        .all_payloads()
        .into_iter()
        .copied()
        .collect();
    let estimate = estimate_frequencies(&randomizer, &reports).expect("estimate");
    assert!(
        (estimate[0] - 0.7).abs() < 0.12,
        "estimate[0] = {}",
        estimate[0]
    );
    assert!(
        (estimate[2] - 0.1).abs() < 0.12,
        "estimate[2] = {}",
        estimate[2]
    );

    // Privacy: the central epsilon at the mixing time is below epsilon_0, and
    // mixing helps (the bound at the mixing time beats the one-round bound).
    let params = AccountantParams::with_defaults(n, epsilon_0).expect("params");
    let central = accountant
        .central_guarantee(ProtocolKind::Single, Scenario::Stationary, &params, rounds)
        .expect("guarantee");
    assert!(
        central.epsilon < epsilon_0,
        "central epsilon {} should be amplified",
        central.epsilon
    );
    let one_round = accountant
        .central_guarantee(ProtocolKind::Single, Scenario::Stationary, &params, 1)
        .expect("guarantee");
    assert!(central.epsilon < one_round.epsilon);

    // Anonymity: few reports return to their origin.
    let view = AdversaryView::from_submissions(outcome.collected.submissions());
    let stats = view.linkage_stats(graph);
    assert!(
        stats.return_rate() < 0.05,
        "return rate {}",
        stats.return_rate()
    );
}

/// The mean-estimation pipeline (Figure 9 workload) runs end to end and the
/// A_all estimate beats the A_single estimate at equal ε₀.
#[test]
fn mean_estimation_pipeline() {
    let generated = Dataset::Deezer.generate_scaled(16, 5).expect("dataset");
    let graph = &generated.graph;
    let n = graph.node_count();
    let workload = MeanEstimationWorkload::generate(&WorkloadConfig {
        dimension: 24,
        ..WorkloadConfig::paper_defaults(n, 11)
    });

    let rounds = 40;
    let all = run_mean_estimation(
        graph,
        &workload.data,
        &workload.dummy_pool,
        MeanEstimationConfig {
            epsilon_0: 4.0,
            rounds,
            protocol: ProtocolKind::All,
            seed: 9,
        },
    )
    .expect("A_all estimation");
    let single = run_mean_estimation(
        graph,
        &workload.data,
        &workload.dummy_pool,
        MeanEstimationConfig {
            epsilon_0: 4.0,
            rounds,
            protocol: ProtocolKind::Single,
            seed: 9,
        },
    )
    .expect("A_single estimation");

    assert_eq!(all.genuine_reports, n);
    assert_eq!(single.genuine_reports + single.dummy_reports, n);
    assert!(single.dummy_reports > 0);
    assert!(all.squared_error.is_finite());
    assert!(
        all.squared_error < 1.0,
        "A_all squared error {}",
        all.squared_error
    );
}

/// Dropouts (lazy walk) leave the pipeline functional and the asymptotic
/// guarantee intact.
#[test]
fn pipeline_with_dropouts() {
    let generated = Dataset::Facebook.generate_scaled(16, 7).expect("dataset");
    let graph = &generated.graph;
    let n = graph.node_count();
    let model = DropoutModel::new(0.25).expect("dropout model");

    let params = AccountantParams::with_defaults(n, 1.0).expect("params");
    let reliable = NetworkShuffleAccountant::new(graph)
        .expect("accountant")
        .central_guarantee_at_mixing_time(ProtocolKind::All, Scenario::Stationary, &params)
        .expect("guarantee");
    let flaky = model
        .central_guarantee_at_mixing_time(graph, ProtocolKind::All, &params)
        .expect("guarantee");
    assert!((reliable.epsilon - flaky.epsilon).abs() / reliable.epsilon < 0.1);

    let outcome = model
        .run_protocol(graph, vec![1u8; n], 30, ProtocolKind::All, 13, |_| 0u8)
        .expect("simulation");
    assert_eq!(outcome.collected.report_count(), n);
}

/// The crypto layer enforces the paper's visibility structure end to end:
/// relayed envelopes cannot be opened by the wrong user, and reports can
/// only be read by the curator.
#[test]
fn crypto_visibility_structure() {
    use network_shuffle::crypto::{Envelope, KeyPair};
    use network_shuffle::report::Report;

    let curator = KeyPair::generate();
    let alice = KeyPair::generate();
    let bob = KeyPair::generate();

    // Alice seals a report for the curator and forwards it to Bob.
    let report = Report::genuine(0, vec![1u8, 2, 3]);
    let for_curator = Envelope::seal(curator.public, report);
    let for_bob = Envelope::seal(bob.public, for_curator);

    // A snooping server (holding only the curator key) cannot open the hop
    // layer; Bob cannot open the curator layer.
    assert!(for_bob.clone().open(&curator.secret).is_err());
    let inner = for_bob
        .open(&bob.secret)
        .expect("bob can unwrap the hop layer");
    assert!(inner.clone().open(&bob.secret).is_err());
    assert!(inner.clone().open(&alice.secret).is_err());
    let report = inner
        .open(&curator.secret)
        .expect("curator reads the payload");
    assert_eq!(report.payload, vec![1, 2, 3]);
}

/// A disconnected communication graph is rejected by the accountant (its
/// privacy would be the parallel composition of its components), while the
/// largest-connected-component preprocessing used for the datasets makes it
/// acceptable.
#[test]
fn disconnected_graphs_are_rejected_until_reduced_to_lcc() {
    use ns_graph::connectivity::largest_connected_component;
    use ns_graph::GraphBuilder;

    // Two communities joined by no edge at all: a 40-node clique (connected,
    // non-bipartite) and a separate 20-node ring.
    let mut builder = GraphBuilder::new(60);
    for i in 0..40 {
        for j in (i + 1)..40 {
            builder.add_edge(i, j).unwrap();
        }
    }
    for i in 40..60 {
        builder
            .add_edge(i, if i + 1 < 60 { i + 1 } else { 40 })
            .unwrap();
    }
    let graph = builder.build();
    assert!(!graph.is_connected());
    assert!(NetworkShuffleAccountant::new(&graph).is_err());

    let (lcc, _) = largest_connected_component(&graph);
    assert!(lcc.is_connected());
    assert!(NetworkShuffleAccountant::new(&lcc).is_ok());
}
