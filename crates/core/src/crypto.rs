//! Simulated public-key infrastructure and envelope encryption (Section 4.4).
//!
//! The communication protocol of the paper uses two key pairs:
//!
//! * `<c₁^pk, c₁^sk>` — one per user, for end-to-end encryption of the hop
//!   between two users, so the (possibly adversarial) server relaying the
//!   message cannot read it;
//! * `<c₂^pk, c₂^sk>` — the curator's envelope key, so relaying users cannot
//!   read the report content they forward.
//!
//! **This module does not implement real cryptography.**  The privacy
//! analysis of the paper never relies on cryptographic hardness, only on the
//! *visibility structure*: who can open which envelope.  [`Envelope`]
//! enforces exactly that structure (opening with the wrong secret key is an
//! error that tests can assert on), which is sufficient for a faithful
//! simulation; a deployment would substitute an AEAD + PKI without touching
//! the rest of the crate.  This substitution is recorded in DESIGN.md.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counter backing key generation, so key ids are unique within a
/// process.
static NEXT_KEY_ID: AtomicU64 = AtomicU64::new(1);

/// Identifier of a public key registered with the PKI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey(u64);

/// The secret counterpart of a [`PublicKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey(u64);

/// A public/secret key pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    /// The shareable half.
    pub public: PublicKey,
    /// The secret half, held only by the key's owner.
    pub secret: SecretKey,
}

impl KeyPair {
    /// Generates a fresh key pair.
    pub fn generate() -> Self {
        let id = NEXT_KEY_ID.fetch_add(1, Ordering::Relaxed);
        KeyPair {
            public: PublicKey(id),
            secret: SecretKey(id),
        }
    }
}

impl PublicKey {
    /// Raw id (for diagnostics).
    pub fn id(&self) -> u64 {
        self.0
    }
}

impl SecretKey {
    /// Raw id (for diagnostics).
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// A payload sealed to a recipient's public key.
///
/// Only the matching secret key can open it; everyone else sees opaque data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope<T> {
    recipient: PublicKey,
    payload: T,
}

impl<T> Envelope<T> {
    /// Seals `payload` for the holder of `recipient`.
    pub fn seal(recipient: PublicKey, payload: T) -> Self {
        Envelope { recipient, payload }
    }

    /// The public key this envelope is addressed to (visible metadata, as in
    /// any real hybrid-encryption scheme).
    pub fn recipient(&self) -> PublicKey {
        self.recipient
    }

    /// Opens the envelope with a secret key.
    ///
    /// # Errors
    ///
    /// [`Error::WrongKey`] if `secret` does not match the recipient key.
    pub fn open(self, secret: &SecretKey) -> Result<T> {
        if secret.0 == self.recipient.0 {
            Ok(self.payload)
        } else {
            Err(Error::WrongKey {
                expected: self.recipient.0,
                got: secret.0,
            })
        }
    }
}

/// The public-key registry: users and the curator publish their public keys
/// here and fetch each other's (Figure 3, "broadcast public keys").
#[derive(Debug, Clone, Default)]
pub struct Pki {
    user_keys: Vec<PublicKey>,
    curator_key: Option<PublicKey>,
}

impl Pki {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Pki::default()
    }

    /// Registers user `i`'s end-to-end public key.  Users must register in
    /// id order (the registry is positional).
    pub fn register_user(&mut self, key: PublicKey) -> usize {
        self.user_keys.push(key);
        self.user_keys.len() - 1
    }

    /// Registers the curator's envelope public key.
    pub fn register_curator(&mut self, key: PublicKey) {
        self.curator_key = Some(key);
    }

    /// Looks up user `i`'s public key.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownUser`] if `i` has not registered.
    pub fn user_key(&self, i: usize) -> Result<PublicKey> {
        self.user_keys.get(i).copied().ok_or(Error::UnknownUser(i))
    }

    /// The curator's public key.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the curator has not registered.
    pub fn curator_key(&self) -> Result<PublicKey> {
        self.curator_key
            .ok_or_else(|| Error::InvalidConfiguration("curator key not registered".into()))
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.user_keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keypairs_are_unique() {
        let a = KeyPair::generate();
        let b = KeyPair::generate();
        assert_ne!(a.public.id(), b.public.id());
        assert_eq!(a.public.id(), a.secret.id());
    }

    #[test]
    fn envelope_opens_only_with_matching_key() {
        let owner = KeyPair::generate();
        let other = KeyPair::generate();
        let env = Envelope::seal(owner.public, "secret payload");
        assert_eq!(env.recipient(), owner.public);
        let err = env.clone().open(&other.secret).unwrap_err();
        assert!(matches!(err, Error::WrongKey { .. }));
        assert_eq!(env.open(&owner.secret).unwrap(), "secret payload");
    }

    #[test]
    fn nested_envelopes_model_the_two_layer_protocol() {
        // Report sealed for the curator, then wrapped for the next-hop user.
        let curator = KeyPair::generate();
        let hop = KeyPair::generate();
        let inner = Envelope::seal(curator.public, vec![1u8, 2, 3]);
        let outer = Envelope::seal(hop.public, inner);

        // The relaying user can strip the outer layer but not the inner one.
        let inner_again = outer.open(&hop.secret).unwrap();
        assert!(inner_again.clone().open(&hop.secret).is_err());
        assert_eq!(inner_again.open(&curator.secret).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn pki_registration_and_lookup() {
        let mut pki = Pki::new();
        let u0 = KeyPair::generate();
        let u1 = KeyPair::generate();
        let curator = KeyPair::generate();
        assert_eq!(pki.register_user(u0.public), 0);
        assert_eq!(pki.register_user(u1.public), 1);
        pki.register_curator(curator.public);

        assert_eq!(pki.user_key(1).unwrap(), u1.public);
        assert!(matches!(pki.user_key(5), Err(Error::UnknownUser(5))));
        assert_eq!(pki.curator_key().unwrap(), curator.public);
        assert_eq!(pki.user_count(), 2);

        let empty = Pki::new();
        assert!(empty.curator_key().is_err());
    }
}
