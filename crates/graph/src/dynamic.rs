//! Time-varying topologies: dynamic graphs, availability-masked transitions
//! and per-round operator schedules.
//!
//! The paper's deployment discussion (Section 4.5) folds every form of churn
//! into a single laziness constant.  This module keeps the *realized* network
//! history instead, in three layers:
//!
//! * [`DynamicGraph`] — a mutable delta layer over the immutable CSR
//!   [`Graph`]: per-node availability flags plus edge insertions/removals,
//!   materialized back into a CSR snapshot incrementally (unchanged row
//!   spans are spliced with bulk copies; past a dirty-node threshold the
//!   snapshot is rebuilt outright, which is cheaper than patching).
//! * [`MaskedTransition`] — the exact one-round operator of the lazy walk on
//!   a graph with an availability mask: a report whose *chosen recipient* is
//!   unavailable stays put for the round.  With every node available this is
//!   bit-for-bit the lazy [`TransitionMatrix`]; with an i.i.d. random mask
//!   its expectation over masks is the lazy walk with laziness equal to the
//!   dropout probability, which is exactly the paper's reduction.
//! * [`TimeVaryingModel`] — a per-round schedule of transition operators
//!   implementing [`TransitionModel`].  The ensemble kernel drives models
//!   through the round-aware entry points
//!   ([`TransitionModel::propagate_round_interleaved`]), so a
//!   [`crate::ensemble::DistributionEnsemble`] evolves exactly through the
//!   *product of distinct per-round transitions* with no new kernel: the
//!   schedule simply swaps which operator each round applies.  A constant
//!   schedule therefore reproduces the static results bitwise — the
//!   degeneracy the tests pin down.
//!
//! Maintaining the structure incrementally instead of re-deriving it from
//! scratch per round follows the updates-under-evaluation pattern of
//! incremental view maintenance (cf. Berkholz et al., "Answering FO+MOD
//! queries under updates").

use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};
use crate::transition::{TransitionMatrix, TransitionModel};
use crate::walk::validate_laziness;
use std::sync::Arc;

/// A shared, type-erased transition operator usable as one schedule entry.
pub type DynTransition = Arc<dyn TransitionModel + Send + Sync>;

/// Default dirty-node fraction beyond which [`DynamicGraph`] rebuilds its
/// CSR snapshot from the adjacency lists instead of splicing the old
/// snapshot: with more than a quarter of the rows changed there is little
/// clean span left to bulk-copy, and the patch path's bookkeeping stops
/// paying for itself.  Tunable per graph via
/// [`DynamicGraph::with_rebuild_dirty_fraction`].
pub const REBUILD_DIRTY_FRACTION: f64 = 0.25;

/// A mutable communication network: an undirected graph under edge
/// insertions/removals plus a per-node availability mask.
///
/// The graph of record is a set of sorted adjacency lists (`O(deg)` edge
/// updates); [`DynamicGraph::snapshot`] materializes the current topology as
/// an immutable CSR [`Graph`] for the engines and accountants, patching the
/// previous snapshot incrementally when few rows changed (see
/// [`REBUILD_DIRTY_FRACTION`]).
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    /// Sorted neighbour list per node — the current truth.
    adjacency: Vec<Vec<NodeId>>,
    /// Availability flags; unavailable nodes still appear in the topology
    /// but cannot *receive* reports (see [`MaskedTransition`]).
    available: Vec<bool>,
    /// Undirected edge count of `adjacency`.
    edge_count: usize,
    /// CSR materialization of `adjacency` as of the last snapshot call.
    snapshot: Graph,
    /// Nodes whose adjacency changed since the last snapshot.
    dirty: Vec<NodeId>,
    dirty_flag: Vec<bool>,
    /// Patch-vs-rebuild threshold of [`DynamicGraph::snapshot`]; defaults to
    /// [`REBUILD_DIRTY_FRACTION`].
    rebuild_dirty_fraction: f64,
}

impl DynamicGraph {
    /// Starts a dynamic graph from a static topology, everyone available.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] if the graph has no nodes.
    pub fn from_graph(graph: &Graph) -> Result<Self> {
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let adjacency: Vec<Vec<NodeId>> = graph
            .nodes()
            .map(|u| graph.neighbors(u).iter().map(|&v| v as NodeId).collect())
            .collect();
        Ok(DynamicGraph {
            adjacency,
            available: vec![true; n],
            edge_count: graph.edge_count(),
            snapshot: graph.clone(),
            dirty: Vec::new(),
            dirty_flag: vec![false; n],
            rebuild_dirty_fraction: REBUILD_DIRTY_FRACTION,
        })
    }

    /// Builder knob: sets the dirty-node fraction beyond which
    /// [`DynamicGraph::snapshot`] rebuilds the CSR outright instead of
    /// patching the previous snapshot.  `0.0` always rebuilds, `1.0`
    /// (effectively) always patches; either way the resulting snapshots are
    /// identical — only the materialization cost changes.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if `fraction` is not a finite value
    /// in `[0, 1]`.
    pub fn with_rebuild_dirty_fraction(mut self, fraction: f64) -> Result<Self> {
        self.set_rebuild_dirty_fraction(fraction)?;
        Ok(self)
    }

    /// In-place form of [`DynamicGraph::with_rebuild_dirty_fraction`].
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if `fraction` is not a finite value
    /// in `[0, 1]`.
    pub fn set_rebuild_dirty_fraction(&mut self, fraction: f64) -> Result<()> {
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(GraphError::InvalidParameters(format!(
                "rebuild dirty fraction must be in [0, 1], got {fraction}"
            )));
        }
        self.rebuild_dirty_fraction = fraction;
        Ok(())
    }

    /// The current patch-vs-rebuild threshold (see
    /// [`DynamicGraph::with_rebuild_dirty_fraction`]).
    pub fn rebuild_dirty_fraction(&self) -> f64 {
        self.rebuild_dirty_fraction
    }

    /// Number of nodes (fixed for the lifetime of the dynamic graph; churn
    /// is modelled through availability, not node removal, so report
    /// indices stay stable).
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Current number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Current degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u].len()
    }

    /// Whether the undirected edge `(u, v)` currently exists
    /// (`O(log deg(u))`; out-of-range endpoints simply yield `false`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.node_count()
            && v < self.node_count()
            && self.adjacency[u].binary_search(&v).is_ok()
    }

    /// Whether node `u` is currently available.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn is_available(&self, u: NodeId) -> bool {
        self.available[u]
    }

    /// The full availability mask.
    pub fn availability(&self) -> &[bool] {
        &self.available
    }

    /// Marks node `u` available/unavailable.  Availability does not touch
    /// the topology (and hence never dirties the CSR snapshot); it is
    /// consumed by [`DynamicGraph::masked_operator`] and the engine's masked
    /// rounds.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] if `u >= n`.
    pub fn set_available(&mut self, u: NodeId, up: bool) -> Result<()> {
        if u >= self.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.node_count(),
            });
        }
        self.available[u] = up;
        Ok(())
    }

    fn check_edge(&self, u: NodeId, v: NodeId) -> Result<()> {
        let n = self.node_count();
        for node in [u, v] {
            if node >= n {
                return Err(GraphError::NodeOutOfRange {
                    node,
                    node_count: n,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        Ok(())
    }

    fn mark_dirty(&mut self, u: NodeId) {
        if !self.dirty_flag[u] {
            self.dirty_flag[u] = true;
            self.dirty.push(u);
        }
    }

    /// Adds the undirected edge `(u, v)`; returns `false` (and changes
    /// nothing) if it already exists.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] on
    /// malformed endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        self.check_edge(u, v)?;
        let Err(slot) = self.adjacency[u].binary_search(&v) else {
            return Ok(false);
        };
        self.adjacency[u].insert(slot, v);
        let slot = self.adjacency[v]
            .binary_search(&u)
            .expect_err("adjacency lists must mirror each other");
        self.adjacency[v].insert(slot, u);
        self.edge_count += 1;
        self.mark_dirty(u);
        self.mark_dirty(v);
        Ok(true)
    }

    /// Removes the undirected edge `(u, v)`; returns `false` (and changes
    /// nothing) if it does not exist.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] on
    /// malformed endpoints.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        self.check_edge(u, v)?;
        let Ok(slot) = self.adjacency[u].binary_search(&v) else {
            return Ok(false);
        };
        self.adjacency[u].remove(slot);
        let slot = self.adjacency[v]
            .binary_search(&u)
            .expect("adjacency lists must mirror each other");
        self.adjacency[v].remove(slot);
        self.edge_count -= 1;
        self.mark_dirty(u);
        self.mark_dirty(v);
        Ok(true)
    }

    /// Current sorted neighbour list of `u` — the live adjacency, which may
    /// be ahead of the last CSR snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adjacency[u]
    }

    /// Number of nodes whose adjacency changed since the last snapshot.
    pub fn dirty_nodes(&self) -> usize {
        self.dirty.len()
    }

    /// The nodes whose adjacency changed since the last snapshot, in
    /// first-touched order.  Capture this *before* calling
    /// [`DynamicGraph::snapshot`] (which clears it) when deriving the
    /// affected-column set for a delta-incremental ensemble advance (see
    /// [`crate::delta`]).
    pub fn dirty_list(&self) -> &[NodeId] {
        &self.dirty
    }

    /// The current topology as an immutable CSR [`Graph`].
    ///
    /// With no pending deltas this is free (the cached snapshot).  With a
    /// *small* delta the previous snapshot is patched: clean row spans are
    /// spliced into the new CSR with bulk copies and only dirty rows are
    /// re-read from the adjacency lists.  Past [`REBUILD_DIRTY_FRACTION`]
    /// dirty nodes the snapshot is rebuilt from the adjacency lists
    /// wholesale.  Both paths produce identical graphs (tested).
    pub fn snapshot(&mut self) -> &Graph {
        if !self.dirty.is_empty() {
            let threshold =
                (self.node_count() as f64 * self.rebuild_dirty_fraction).ceil() as usize;
            self.snapshot = if self.dirty.len() > threshold {
                self.rebuild_csr()
            } else {
                self.patch_csr()
            };
            self.dirty.clear();
            self.dirty_flag.iter_mut().for_each(|f| *f = false);
        }
        &self.snapshot
    }

    /// Full rebuild: flatten every adjacency list.
    fn rebuild_csr(&self) -> Graph {
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * self.edge_count);
        offsets.push(0usize);
        for list in &self.adjacency {
            neighbors.extend(list.iter().map(|&v| v as u32));
            offsets.push(neighbors.len());
        }
        Graph::from_csr(offsets, neighbors)
    }

    /// Incremental patch: splice unchanged row spans out of the previous
    /// snapshot and only dirty rows out of the adjacency lists.
    fn patch_csr(&self) -> Graph {
        let n = self.node_count();
        let (old_offsets, old_neighbors) = self.snapshot.csr_parts();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * self.edge_count);
        offsets.push(0usize);
        let mut u = 0;
        while u < n {
            if self.dirty_flag[u] {
                neighbors.extend(self.adjacency[u].iter().map(|&v| v as u32));
                offsets.push(neighbors.len());
                u += 1;
            } else {
                let mut v = u;
                while v < n && !self.dirty_flag[v] {
                    v += 1;
                }
                let start = old_offsets[u];
                neighbors.extend_from_slice(&old_neighbors[start..old_offsets[v]]);
                let shift = offsets[u] as isize - start as isize;
                for w in u..v {
                    offsets.push((old_offsets[w + 1] as isize + shift) as usize);
                }
                u = v;
            }
        }
        Graph::from_csr(offsets, neighbors)
    }

    /// The lazy-walk transition matrix of the *current* topology (ignoring
    /// availability — pair with [`DynamicGraph::masked_operator`] for the
    /// availability-aware operator).
    ///
    /// # Errors
    ///
    /// Matrix construction errors (isolated node, invalid laziness).
    pub fn transition(&mut self, laziness: f64) -> Result<TransitionMatrix> {
        self.snapshot();
        TransitionMatrix::with_laziness(&self.snapshot, laziness)
    }

    /// The availability-masked one-round operator of the current topology
    /// and mask.
    ///
    /// # Errors
    ///
    /// Operator construction errors (isolated node, invalid laziness).
    pub fn masked_operator(&mut self, laziness: f64) -> Result<MaskedTransition> {
        self.snapshot();
        MaskedTransition::new(&self.snapshot, self.available.clone(), laziness)
    }
}

/// The exact one-round operator of a lazy walk under an availability mask.
///
/// Semantics (matching [`crate::mixing_engine::MixingEngine`]'s masked
/// rounds and the paper's dropout story): the holder of a report first stays
/// put with probability `laziness`; otherwise it picks a neighbour uniformly
/// at random, and if that *recipient* is unavailable the report stays put
/// for the round.  Holders always attempt to send — only recipient
/// availability matters — which is what makes the expectation over i.i.d.
/// masks *exactly* the lazy walk (see the laziness-equivalence notes in the
/// core crate's `faults` module).
///
/// With every node available the operator is bit-for-bit
/// [`TransitionMatrix::with_laziness`] on the same graph.
///
/// The CSR topology (plus reciprocal degrees) lives behind an [`Arc`], so a
/// whole schedule of per-round masks over one topology — the common case in
/// [`TimeVaryingModel::from_availability`] — shares a single copy and each
/// additional round costs only its `n`-bool mask.
#[derive(Debug, Clone)]
pub struct MaskedTransition {
    shared: Arc<MaskedCsr>,
    available: Vec<bool>,
    laziness: f64,
}

/// The mask-independent part of a [`MaskedTransition`]: one CSR copy shared
/// by every operator built on the same topology.
#[derive(Debug)]
struct MaskedCsr {
    inv_degree: Vec<f64>,
    offsets: Vec<usize>,
    neighbors: Vec<usize>,
}

impl MaskedCsr {
    /// Validates `graph` and copies its CSR once.
    fn of(graph: &Graph) -> Result<Arc<Self>> {
        if graph.node_count() == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        let (offsets, neighbors) = graph.csr_parts();
        Ok(Arc::new(MaskedCsr {
            inv_degree: graph
                .nodes()
                .map(|u| 1.0 / graph.degree(u) as f64)
                .collect(),
            offsets: offsets.to_vec(),
            neighbors: neighbors.iter().map(|&v| v as usize).collect(),
        }))
    }
}

impl MaskedTransition {
    /// Builds the masked operator for `graph` and `available`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyGraph`] / [`GraphError::IsolatedNode`] for
    ///   degenerate graphs,
    /// * [`GraphError::InvalidParameters`] if `laziness ∉ [0, 1)` or the
    ///   mask length differs from the node count.
    pub fn new(graph: &Graph, available: Vec<bool>, laziness: f64) -> Result<Self> {
        Self::with_shared(MaskedCsr::of(graph)?, available, laziness)
    }

    /// Builds an operator over an already-validated shared topology.
    fn with_shared(shared: Arc<MaskedCsr>, available: Vec<bool>, laziness: f64) -> Result<Self> {
        validate_laziness(laziness).map_err(GraphError::InvalidParameters)?;
        let n = shared.inv_degree.len();
        if available.len() != n {
            return Err(GraphError::InvalidParameters(format!(
                "availability mask has {} entries for {n} nodes",
                available.len()
            )));
        }
        Ok(MaskedTransition {
            shared,
            available,
            laziness,
        })
    }

    /// The walk's laziness (mask-independent stay probability).
    pub fn laziness(&self) -> f64 {
        self.laziness
    }

    /// The availability mask the operator routes around.
    pub fn availability(&self) -> &[bool] {
        &self.available
    }
}

impl TransitionModel for MaskedTransition {
    fn node_count(&self) -> usize {
        self.shared.inv_degree.len()
    }

    /// Scatter-form update in the same per-node, per-neighbour order as
    /// [`TransitionMatrix::propagate_into`], with each share redirected back
    /// to the sender when the recipient is unavailable.  The self terms of
    /// node `i` (laziness plus redirected shares) land in `out[i]` while the
    /// sweep processes `i`, exactly where the static kernel adds its lazy
    /// term — so with an all-available mask the accumulation sequence, and
    /// hence every rounding, is identical to the static matrix.
    fn propagate_into(&self, p: &[f64], out: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(p.len(), n, "input distribution has wrong length");
        assert_eq!(out.len(), n, "output buffer has wrong length");
        let move_factor = 1.0 - self.laziness;
        out.fill(0.0);
        for i in 0..n {
            let mass = p[i];
            if mass == 0.0 {
                continue;
            }
            let mut stay = self.laziness * mass;
            let share = move_factor * mass * self.shared.inv_degree[i];
            for &j in &self.shared.neighbors[self.shared.offsets[i]..self.shared.offsets[i + 1]] {
                if self.available[j] {
                    out[j] += share;
                } else {
                    stay += share;
                }
            }
            out[i] += stay;
        }
    }

    /// Fused interleaved form: one sweep of the CSR serves all lanes, with
    /// per-lane arithmetic in exactly the [`MaskedTransition::propagate_into`]
    /// order (zero-mass lanes contribute `+0.0`, which never changes a
    /// non-negative accumulation), so each lane stays bitwise identical to
    /// the single-distribution route.
    fn propagate_interleaved(&self, lanes: usize, input: &[f64], output: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(input.len(), lanes * n, "interleaved input has wrong length");
        assert_eq!(
            output.len(),
            lanes * n,
            "interleaved output has wrong length"
        );
        let move_factor = 1.0 - self.laziness;
        output.fill(0.0);
        let mut stay = vec![0.0f64; lanes];
        let mut share = vec![0.0f64; lanes];
        for i in 0..n {
            let base = i * lanes;
            let inv_degree = self.shared.inv_degree[i];
            for lane in 0..lanes {
                let mass = input[base + lane];
                stay[lane] = self.laziness * mass;
                share[lane] = move_factor * mass * inv_degree;
            }
            for &j in &self.shared.neighbors[self.shared.offsets[i]..self.shared.offsets[i + 1]] {
                if self.available[j] {
                    let out_j = &mut output[j * lanes..j * lanes + lanes];
                    for (out, &s) in out_j.iter_mut().zip(share.iter()) {
                        *out += s;
                    }
                } else {
                    for (stay, &s) in stay.iter_mut().zip(share.iter()) {
                        *stay += s;
                    }
                }
            }
            let out_i = &mut output[base..base + lanes];
            for (out, &s) in out_i.iter_mut().zip(stay.iter()) {
                *out += s;
            }
        }
    }

    /// Pull-form recomputation of selected columns, bitwise identical to the
    /// scatter sweep of [`MaskedTransition::propagate_into`]: column `j`
    /// accumulates its incoming shares in ascending source order with `j`'s
    /// own stay term (laziness plus shares bounced off unavailable
    /// recipients, themselves accumulated in `j`'s CSR neighbour order)
    /// folded in at `j`'s position in that order.  Contributions from
    /// zero-mass sources, which the scatter form skips, add `±0.0` and never
    /// change a non-negative accumulation.  An unavailable column receives
    /// no incoming shares — only its own stay term.
    fn propagate_round_columns(
        &self,
        _round: usize,
        p: &[f64],
        out: &mut [f64],
        columns: &[usize],
    ) {
        let n = self.node_count();
        assert_eq!(p.len(), n, "input distribution has wrong length");
        assert_eq!(out.len(), n, "output buffer has wrong length");
        let move_factor = 1.0 - self.laziness;
        for &j in columns {
            let row = &self.shared.neighbors[self.shared.offsets[j]..self.shared.offsets[j + 1]];
            // j's own stay term, in the scatter sweep's accumulation order.
            let mut stay = self.laziness * p[j];
            let share_j = move_factor * p[j] * self.shared.inv_degree[j];
            for &k in row {
                if !self.available[k] {
                    stay += share_j;
                }
            }
            let mut acc = 0.0f64;
            if self.available[j] {
                let mut stay_pending = true;
                for &i in row {
                    if stay_pending && i > j {
                        acc += stay;
                        stay_pending = false;
                    }
                    acc += move_factor * p[i] * self.shared.inv_degree[i];
                }
                if stay_pending {
                    acc += stay;
                }
            } else {
                acc += stay;
            }
            out[j] = acc;
        }
    }

    /// Accumulator-blocked form of the masked per-column pull: each
    /// column's neighbour list is walked once for up to 8 rows at a time.
    /// Every row evaluates exactly the per-row kernel's expressions in
    /// exactly its order — stay term accumulated in CSR neighbour order,
    /// incoming shares in ascending source order with the stay folded at
    /// `j`'s position — so blocking never changes a bit.
    fn propagate_round_columns_rows(
        &self,
        _round: usize,
        rows: usize,
        prev: &[f64],
        out: &mut [f64],
        columns: &[usize],
    ) {
        let n = self.node_count();
        assert_eq!(prev.len(), rows * n, "input block has wrong length");
        assert_eq!(out.len(), rows * n, "output block has wrong length");
        let move_factor = 1.0 - self.laziness;
        const BLOCK: usize = 8;
        let mut base = 0;
        while base < rows {
            let b = BLOCK.min(rows - base);
            let prev_block = &prev[base * n..(base + b) * n];
            let out_block = &mut out[base * n..(base + b) * n];
            for &j in columns {
                let row =
                    &self.shared.neighbors[self.shared.offsets[j]..self.shared.offsets[j + 1]];
                // j's own stay term per row, in the scatter sweep's
                // accumulation order.
                let mut stay = [0.0f64; BLOCK];
                for (r, s) in stay.iter_mut().enumerate().take(b) {
                    *s = self.laziness * prev_block[r * n + j];
                }
                for &k in row {
                    if !self.available[k] {
                        for (r, s) in stay.iter_mut().enumerate().take(b) {
                            *s += move_factor * prev_block[r * n + j] * self.shared.inv_degree[j];
                        }
                    }
                }
                let mut acc = [0.0f64; BLOCK];
                if self.available[j] {
                    let mut stay_pending = true;
                    for &i in row {
                        if stay_pending && i > j {
                            for (r, a) in acc.iter_mut().enumerate().take(b) {
                                *a += stay[r];
                            }
                            stay_pending = false;
                        }
                        for (r, a) in acc.iter_mut().enumerate().take(b) {
                            *a += move_factor * prev_block[r * n + i] * self.shared.inv_degree[i];
                        }
                    }
                    if stay_pending {
                        for (r, a) in acc.iter_mut().enumerate().take(b) {
                            *a += stay[r];
                        }
                    }
                } else {
                    acc[..b].copy_from_slice(&stay[..b]);
                }
                for (r, &a) in acc.iter().enumerate().take(b) {
                    out_block[r * n + j] = a;
                }
            }
            base += BLOCK;
        }
    }

    fn propagate_round_columns_rows_interleaved(
        &self,
        _round: usize,
        rows: usize,
        prev_il: &[f64],
        out: &mut [f64],
        columns: &[usize],
    ) {
        let n = self.node_count();
        assert_eq!(prev_il.len(), rows * n, "input block has wrong length");
        assert_eq!(out.len(), rows * n, "output block has wrong length");
        let move_factor = 1.0 - self.laziness;
        const BLOCK: usize = 8;
        let mut base = 0;
        while base < rows {
            let b = BLOCK.min(rows - base);
            let out_block = &mut out[base * n..(base + b) * n];
            for &j in columns {
                let row =
                    &self.shared.neighbors[self.shared.offsets[j]..self.shared.offsets[j + 1]];
                let own = &prev_il[j * rows + base..j * rows + base + b];
                // j's own stay term per row, in the scatter sweep's
                // accumulation order.
                let mut stay = [0.0f64; BLOCK];
                for (r, s) in stay.iter_mut().enumerate().take(b) {
                    *s = self.laziness * own[r];
                }
                for &k in row {
                    if !self.available[k] {
                        for (r, s) in stay.iter_mut().enumerate().take(b) {
                            *s += move_factor * own[r] * self.shared.inv_degree[j];
                        }
                    }
                }
                let mut acc = [0.0f64; BLOCK];
                if self.available[j] {
                    let mut stay_pending = true;
                    for &i in row {
                        if stay_pending && i > j {
                            for (r, a) in acc.iter_mut().enumerate().take(b) {
                                *a += stay[r];
                            }
                            stay_pending = false;
                        }
                        let src = &prev_il[i * rows + base..i * rows + base + b];
                        for (r, a) in acc.iter_mut().enumerate().take(b) {
                            *a += move_factor * src[r] * self.shared.inv_degree[i];
                        }
                    }
                    if stay_pending {
                        for (r, a) in acc.iter_mut().enumerate().take(b) {
                            *a += stay[r];
                        }
                    }
                } else {
                    acc[..b].copy_from_slice(&stay[..b]);
                }
                for (r, &a) in acc.iter().enumerate().take(b) {
                    out_block[r * n + j] = a;
                }
            }
            base += BLOCK;
        }
    }
}

/// A per-round schedule of transition operators: the walk applies
/// `operator(0)` between `t = 0` and `t = 1`, `operator(1)` next, and so on.
///
/// Implements [`TransitionModel`] by overriding the round-aware entry
/// points, so the existing ensemble kernel — and everything built on it
/// (exact per-user accounting, ε-vs-rounds sweeps, trajectory drivers) —
/// evolves distributions through the exact product of per-round operators
/// with no new kernel code.  Driving a schedule through the *non*-round
/// entry points applies the round-0 operator; the batched drivers always
/// use the round-aware forms.
///
/// After the schedule's last entry the behaviour is either **hold** (keep
/// applying the final operator; the default, matching "the outage persists")
/// or **cycle** (wrap around; for periodic availability patterns).
#[derive(Clone)]
pub struct TimeVaryingModel {
    node_count: usize,
    schedule: Vec<DynTransition>,
    cycle: bool,
}

impl std::fmt::Debug for TimeVaryingModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeVaryingModel")
            .field("node_count", &self.node_count)
            .field("schedule_len", &self.schedule.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl TimeVaryingModel {
    fn build(schedule: Vec<DynTransition>, cycle: bool) -> Result<Self> {
        let Some(first) = schedule.first() else {
            return Err(GraphError::InvalidParameters(
                "a time-varying model needs at least one scheduled operator".into(),
            ));
        };
        let node_count = first.node_count();
        if node_count == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(bad) = schedule.iter().position(|m| m.node_count() != node_count) {
            return Err(GraphError::InvalidParameters(format!(
                "scheduled operator {bad} has {} nodes, expected {node_count}",
                schedule[bad].node_count()
            )));
        }
        Ok(TimeVaryingModel {
            node_count,
            schedule,
            cycle,
        })
    }

    /// A schedule that holds its last operator forever once exhausted.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the schedule is empty or the
    /// operators disagree on the node count.
    pub fn new(schedule: Vec<DynTransition>) -> Result<Self> {
        Self::build(schedule, false)
    }

    /// A schedule that repeats periodically.
    ///
    /// # Errors
    ///
    /// Same as [`TimeVaryingModel::new`].
    pub fn cycling(schedule: Vec<DynTransition>) -> Result<Self> {
        Self::build(schedule, true)
    }

    /// The constant schedule: one operator for every round.  This is the
    /// static-degeneracy case — results are bitwise identical to using the
    /// operator directly.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] if the operator has no nodes.
    pub fn constant(operator: DynTransition) -> Result<Self> {
        Self::build(vec![operator], false)
    }

    /// Convenience: a schedule of owned [`TransitionMatrix`] operators.
    ///
    /// # Errors
    ///
    /// Same as [`TimeVaryingModel::new`].
    pub fn from_matrices(matrices: Vec<TransitionMatrix>) -> Result<Self> {
        Self::new(
            matrices
                .into_iter()
                .map(|m| Arc::new(m) as DynTransition)
                .collect(),
        )
    }

    /// A schedule of [`MaskedTransition`] operators, one per round, from a
    /// sequence of realized availability masks on a static topology.
    ///
    /// # Errors
    ///
    /// Operator construction errors (degenerate graph, bad laziness or mask
    /// shape), or an empty mask sequence.
    pub fn from_availability(graph: &Graph, laziness: f64, masks: &[Vec<bool>]) -> Result<Self> {
        // One shared CSR copy for the whole schedule: each round adds only
        // its n-bool mask, so a t_mix-length schedule stays O(n + m + t·n)
        // instead of O(t · (n + m)).
        let shared = MaskedCsr::of(graph)?;
        let schedule: Vec<DynTransition> = masks
            .iter()
            .map(|mask| {
                MaskedTransition::with_shared(Arc::clone(&shared), mask.clone(), laziness)
                    .map(|op| Arc::new(op) as DynTransition)
            })
            .collect::<Result<_>>()?;
        Self::new(schedule)
    }

    /// Number of explicitly scheduled rounds.
    pub fn schedule_len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the schedule cycles (vs. holding its last operator).
    pub fn is_cycling(&self) -> bool {
        self.cycle
    }

    /// The operator applied at absolute round `round`.
    pub fn operator(&self, round: usize) -> &(dyn TransitionModel + Send + Sync) {
        let index = if self.cycle {
            round % self.schedule.len()
        } else {
            round.min(self.schedule.len() - 1)
        };
        &*self.schedule[index]
    }
}

impl TransitionModel for TimeVaryingModel {
    fn node_count(&self) -> usize {
        self.node_count
    }

    fn propagate_into(&self, p: &[f64], out: &mut [f64]) {
        self.propagate_round_into(0, p, out);
    }

    fn propagate_interleaved(&self, lanes: usize, input: &[f64], output: &mut [f64]) {
        self.propagate_round_interleaved(0, lanes, input, output);
    }

    fn propagate_round_into(&self, round: usize, p: &[f64], out: &mut [f64]) {
        self.operator(round).propagate_into(p, out);
    }

    fn propagate_round_interleaved(
        &self,
        round: usize,
        lanes: usize,
        input: &[f64],
        output: &mut [f64],
    ) {
        self.operator(round)
            .propagate_interleaved(lanes, input, output);
    }

    fn propagate_round_columns(&self, round: usize, p: &[f64], out: &mut [f64], columns: &[usize]) {
        self.operator(round)
            .propagate_round_columns(0, p, out, columns);
    }

    fn propagate_round_columns_rows(
        &self,
        round: usize,
        rows: usize,
        prev: &[f64],
        out: &mut [f64],
        columns: &[usize],
    ) {
        self.operator(round)
            .propagate_round_columns_rows(0, rows, prev, out, columns);
    }

    fn propagate_round_columns_rows_interleaved(
        &self,
        round: usize,
        rows: usize,
        prev_il: &[f64],
        out: &mut [f64],
        columns: &[usize],
    ) {
        self.operator(round)
            .propagate_round_columns_rows_interleaved(0, rows, prev_il, out, columns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::DistributionEnsemble;
    use crate::generators;
    use crate::rng::seeded_rng;

    fn test_graph(seed: u64) -> Graph {
        generators::barabasi_albert(120, 3, &mut seeded_rng(seed)).unwrap()
    }

    #[test]
    fn dynamic_graph_tracks_edge_deltas() {
        let g = test_graph(1);
        let mut dynamic = DynamicGraph::from_graph(&g).unwrap();
        assert_eq!(dynamic.node_count(), g.node_count());
        assert_eq!(dynamic.edge_count(), g.edge_count());
        // Adding an existing edge is a no-op; a new edge changes counts.
        let (u, v) = g.edges().next().unwrap();
        assert!(!dynamic.add_edge(u, v).unwrap());
        let fresh = (0..g.node_count())
            .flat_map(|a| (0..a).map(move |b| (b, a)))
            .find(|&(a, b)| !g.has_edge(a, b))
            .unwrap();
        assert!(dynamic.add_edge(fresh.0, fresh.1).unwrap());
        assert_eq!(dynamic.edge_count(), g.edge_count() + 1);
        assert!(dynamic.remove_edge(fresh.0, fresh.1).unwrap());
        assert!(!dynamic.remove_edge(fresh.0, fresh.1).unwrap());
        assert_eq!(dynamic.edge_count(), g.edge_count());
        // Validation.
        assert!(dynamic.add_edge(0, 0).is_err());
        assert!(dynamic.add_edge(0, 10_000).is_err());
        assert!(dynamic.set_available(10_000, false).is_err());
    }

    #[test]
    fn incremental_patch_matches_full_rebuild() {
        let g = test_graph(2);
        let n = g.node_count();
        let mut rng = seeded_rng(3);
        let mut dynamic = DynamicGraph::from_graph(&g).unwrap();
        use rand::Rng;
        // Small delta: stays below the rebuild threshold -> patch path.
        for _ in 0..4 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                if dynamic.has_edge(u, v) {
                    dynamic.remove_edge(u, v).unwrap();
                } else {
                    dynamic.add_edge(u, v).unwrap();
                }
            }
        }
        assert!(dynamic.dirty_nodes() <= 8);
        let patched = dynamic.snapshot().clone();
        assert_eq!(patched, dynamic.rebuild_csr());
        assert_eq!(dynamic.dirty_nodes(), 0);
        // Large delta: exceeds the threshold -> rebuild path; the snapshot
        // must still equal a from-scratch construction from the edge set.
        for u in 0..n {
            let v = (u + 7) % n;
            if u != v && !dynamic.has_edge(u, v) {
                dynamic.add_edge(u, v).unwrap();
            }
        }
        assert!(dynamic.dirty_nodes() > n / 4);
        let rebuilt = dynamic.snapshot().clone();
        let edges: Vec<_> = rebuilt.edges().collect();
        assert_eq!(rebuilt, Graph::from_edges(n, &edges).unwrap());
        assert_eq!(rebuilt.edge_count(), dynamic.edge_count());
    }

    #[test]
    fn snapshot_is_cached_until_dirty() {
        let g = test_graph(4);
        let mut dynamic = DynamicGraph::from_graph(&g).unwrap();
        assert_eq!(dynamic.snapshot(), &g);
        dynamic.set_available(0, false).unwrap();
        // Availability does not dirty the topology snapshot.
        assert_eq!(dynamic.dirty_nodes(), 0);
        assert_eq!(dynamic.snapshot(), &g);
    }

    #[test]
    fn masked_transition_with_everyone_available_is_the_lazy_matrix_bitwise() {
        let g = test_graph(5);
        let n = g.node_count();
        for laziness in [0.0, 0.3] {
            let matrix = TransitionMatrix::with_laziness(&g, laziness).unwrap();
            let masked = MaskedTransition::new(&g, vec![true; n], laziness).unwrap();
            let mut p = vec![0.0; n];
            p[3] = 0.25;
            p[17] = 0.75;
            for _ in 0..9 {
                let mut a = vec![0.0; n];
                let mut b = vec![0.0; n];
                TransitionModel::propagate_into(&matrix, &p, &mut a);
                masked.propagate_into(&p, &mut b);
                assert_eq!(a, b);
                p = a;
            }
        }
    }

    #[test]
    fn masked_transition_conserves_mass_and_blocks_unavailable_recipients() {
        let g = test_graph(6);
        let n = g.node_count();
        let mut available = vec![true; n];
        for u in (0..n).step_by(3) {
            available[u] = false;
        }
        let masked = MaskedTransition::new(&g, available.clone(), 0.2).unwrap();
        let mut ensemble = DistributionEnsemble::point_masses(n, &[0, 5, n - 1]).unwrap();
        ensemble.advance(&masked, 6);
        for row in 0..3 {
            let sum: f64 = ensemble.row(row).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {row} sums to {sum}");
        }
        // One step from a point mass: unavailable neighbours receive nothing,
        // the redirected shares stay at the origin.
        let origin = 1;
        let mut p = vec![0.0; n];
        p[origin] = 1.0;
        let mut out = vec![0.0; n];
        masked.propagate_into(&p, &mut out);
        let unavailable_nbrs = g
            .neighbors(origin)
            .iter()
            .filter(|&&j| !available[j as usize])
            .count();
        let expected_stay = 0.2 + 0.8 * unavailable_nbrs as f64 / g.degree(origin) as f64;
        assert!((out[origin] - expected_stay).abs() < 1e-12);
        for &j in g.neighbors(origin) {
            if !available[j as usize] {
                assert_eq!(out[j as usize], 0.0);
            }
        }
    }

    #[test]
    fn masked_interleaved_kernel_matches_scalar_per_lane() {
        let g = test_graph(7);
        let n = g.node_count();
        let mut available = vec![true; n];
        available[2] = false;
        available[40] = false;
        let masked = MaskedTransition::new(&g, available, 0.15).unwrap();
        let origins: Vec<usize> = (0..11).map(|i| (i * 13) % n).collect();
        let mut fused = DistributionEnsemble::point_masses(n, &origins).unwrap();
        fused.advance(&masked, 8);
        for (row, &origin) in origins.iter().enumerate() {
            let mut p = vec![0.0; n];
            p[origin] = 1.0;
            let mut next = vec![0.0; n];
            for _ in 0..8 {
                masked.propagate_into(&p, &mut next);
                std::mem::swap(&mut p, &mut next);
            }
            assert_eq!(fused.row(row), p.as_slice(), "row {row} diverged");
        }
    }

    #[test]
    fn masked_transition_validates_inputs() {
        let g = test_graph(8);
        let n = g.node_count();
        assert!(MaskedTransition::new(&g, vec![true; n - 1], 0.0).is_err());
        assert!(MaskedTransition::new(&g, vec![true; n], 1.0).is_err());
        let isolated = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(MaskedTransition::new(&isolated, vec![true; 3], 0.0).is_err());
    }

    #[test]
    fn constant_schedule_reproduces_static_ensemble_bitwise() {
        let g = test_graph(9);
        let n = g.node_count();
        let matrix = TransitionMatrix::with_laziness(&g, 0.1).unwrap();
        let schedule = TimeVaryingModel::constant(Arc::new(matrix.clone())).unwrap();
        let origins: Vec<usize> = (0..n).step_by(2).collect();
        let mut static_e = DistributionEnsemble::point_masses(n, &origins).unwrap();
        let static_t = static_e.advance_tracked(&matrix, 11);
        let mut scheduled = DistributionEnsemble::point_masses(n, &origins).unwrap();
        let scheduled_t = scheduled.advance_tracked(&schedule, 11);
        assert_eq!(static_e, scheduled);
        assert_eq!(static_t, scheduled_t);
    }

    #[test]
    fn schedule_applies_distinct_operators_in_round_order() {
        // Round 0 on the path 0-1-2, round 1 on the triangle: a point mass
        // at node 0 must move as the product of the two distinct operators.
        let path = generators::path(3).unwrap();
        let triangle = generators::cycle(3).unwrap();
        let m_path = TransitionMatrix::new(&path).unwrap();
        let m_tri = TransitionMatrix::new(&triangle).unwrap();
        let schedule =
            TimeVaryingModel::from_matrices(vec![m_path.clone(), m_tri.clone()]).unwrap();
        let mut ensemble = DistributionEnsemble::point_masses(3, &[0]).unwrap();
        ensemble.advance(&schedule, 2);
        let step1 = m_path.propagate(&[1.0, 0.0, 0.0]);
        let expected = m_tri.propagate(&step1);
        assert_eq!(ensemble.row(0), expected.as_slice());
        // Hold semantics: round 2 keeps applying the triangle operator.
        let mut held = DistributionEnsemble::point_masses(3, &[0]).unwrap();
        held.advance(&schedule, 3);
        let expected3 = m_tri.propagate(&expected);
        assert_eq!(held.row(0), expected3.as_slice());
        // Cycle semantics wrap back to the path operator.
        let cycling = TimeVaryingModel::cycling(vec![
            Arc::new(m_path.clone()) as DynTransition,
            Arc::new(m_tri) as DynTransition,
        ])
        .unwrap();
        let mut cycled = DistributionEnsemble::point_masses(3, &[0]).unwrap();
        cycled.advance(&cycling, 3);
        let expected_cycle = m_path.propagate(&expected);
        assert_eq!(cycled.row(0), expected_cycle.as_slice());
    }

    #[test]
    fn time_varying_model_validates_schedules() {
        assert!(TimeVaryingModel::new(Vec::new()).is_err());
        let small = TransitionMatrix::new(&generators::cycle(3).unwrap()).unwrap();
        let large = TransitionMatrix::new(&generators::cycle(5).unwrap()).unwrap();
        assert!(TimeVaryingModel::from_matrices(vec![small, large]).is_err());
    }

    #[test]
    fn availability_schedule_interpolates_between_masks() {
        let g = test_graph(10);
        let n = g.node_count();
        let mut blackout = vec![true; n];
        for slot in blackout.iter_mut().take(n / 4) {
            *slot = false;
        }
        let masks = vec![vec![true; n], blackout];
        let model = TimeVaryingModel::from_availability(&g, 0.0, &masks).unwrap();
        assert_eq!(model.schedule_len(), 2);
        assert_eq!(model.node_count(), n);
        // Round 0 is the plain walk; round 1 routes around the blackout.
        let mut ensemble = DistributionEnsemble::point_masses(n, &[n - 1]).unwrap();
        ensemble.advance(&model, 2);
        let sum: f64 = ensemble.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
