//! Observability inertness: the full telemetry stack must be provably
//! inert — attaching it changes **no observable bit** of any run.
//!
//! Three layers of evidence:
//!
//! 1. **Golden traces** — instrumented engines re-run the exact scenarios
//!    of `tests/golden_round_traces.rs` (holder/walker orders, masked and
//!    unmasked, 1- and 3-shard) and must reproduce the blessed byte-exact
//!    traces in *both* draw modes.  Telemetry that drew randomness, skewed
//!    a merge order or consumed a stream would fail these bit for bit.
//! 2. **Proptest zoo** — on random graphs from every strategy family, every
//!    combination of draw mode × shard count × masking runs bare and
//!    instrumented side by side; positions, holder bucket orders, sent
//!    counts and post-run per-shard RNG clocks must agree exactly, and the
//!    coordinator's live privacy quote must agree to the last mantissa bit.
//! 3. **Durable runtime** — a fully instrumented `DurableCoordinator` run
//!    (span timers, WAL histograms, admission audit, trace export) is
//!    compared against a bare twin; the exported `trace.jsonl` must also
//!    validate against the in-repo schema, and `nsctl` must smoke-run
//!    against the produced directory.

mod common;

use common::strategies;
use network_shuffle::prelude::{AccountantParams, CoordinatorConfig, ShuffleCoordinator};
use network_shuffle::telemetry::CoordinatorTelemetry;
use ns_graph::generators;
use ns_graph::mixing_engine::{MixingEngine, RoundObserver, RoundStats};
use ns_graph::partition::Partition;
use ns_graph::rng::seeded_rng;
use ns_graph::round::DrawMode;
use ns_graph::sharded_engine::{shard_stream, ShardedMixingEngine};
use ns_graph::telemetry::EngineTelemetry;
use ns_graph::Graph;
use ns_obs::MetricsRegistry;
use ns_store::prelude::{DurableConfig, DurableCoordinator, METRICS_FILE, TRACE_FILE};
use proptest::prelude::*;
use rand::Rng;
use std::fmt::Write as _;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// Layer 1: instrumented engines against the existing golden traces.
//
// The builders below intentionally mirror `tests/golden_round_traces.rs`
// line for line, with one addition: every engine gets a live
// `EngineTelemetry` attached before its first round.  The output must stay
// byte-identical to the blessed pre-refactor traces.
// ---------------------------------------------------------------------------

const GOLDEN_PATH: &str = "tests/golden/round_traces.txt";
const GOLDEN_FAST_PATH: &str = "tests/golden/round_traces_fast.txt";

fn mask_for_round(n: usize, round: usize) -> Vec<bool> {
    (0..n)
        .map(|u| !(u * 7 + round * 3).is_multiple_of(5))
        .collect()
}

fn record_round(
    out: &mut String,
    round: usize,
    positions: &[u32],
    holders: &[Vec<usize>],
    stats: Option<(&[usize], &[usize])>,
) {
    write!(out, "round {round} positions").unwrap();
    for &p in positions {
        write!(out, " {p}").unwrap();
    }
    out.push('\n');
    write!(out, "round {round} holders").unwrap();
    for bucket in holders {
        out.push_str(" |");
        for &w in bucket {
            write!(out, " {w}").unwrap();
        }
    }
    out.push('\n');
    if let Some((sent, load)) = stats {
        write!(out, "round {round} sent").unwrap();
        for &s in sent {
            write!(out, " {s}").unwrap();
        }
        out.push('\n');
        write!(out, "round {round} load").unwrap();
        for &l in load {
            write!(out, " {l}").unwrap();
        }
        out.push('\n');
    }
}

#[derive(Default)]
struct StatsTap {
    sent: Vec<usize>,
    load: Vec<usize>,
}

impl RoundObserver for StatsTap {
    fn on_round(&mut self, stats: &RoundStats<'_>) {
        self.sent = stats.sent.iter().map(|&s| s as usize).collect();
        self.load = stats.load.iter().map(|&l| l as usize).collect();
    }
}

fn trace_holder_rounds(out: &mut String, masked: bool, mode: DrawMode, registry: &MetricsRegistry) {
    let g = generators::barabasi_albert(80, 3, &mut seeded_rng(11)).unwrap();
    let n = g.node_count();
    for laziness in [0.0, 0.3] {
        writeln!(
            out,
            "# scenario holder masked={masked} n={n} laziness={laziness}"
        )
        .unwrap();
        let mut engine = MixingEngine::one_walker_per_node(&g).unwrap();
        engine.set_draw_mode(mode);
        engine.set_telemetry(Some(EngineTelemetry::register(registry)));
        let mut rng = seeded_rng(101);
        for round in 1..=6 {
            let mut tap = StatsTap::default();
            if masked {
                let mask = mask_for_round(n, round);
                engine.step_holder_masked(laziness, &mask, &mut rng, &mut tap);
            } else {
                engine.step_holder(laziness, &mut rng, &mut tap);
            }
            record_round(
                out,
                round,
                engine.positions(),
                &engine.walkers_by_holder(),
                Some((&tap.sent, &tap.load)),
            );
        }
        writeln!(out, "rng-draw {}", rng.gen::<u64>()).unwrap();
    }
}

fn trace_walker_rounds(out: &mut String, masked: bool, mode: DrawMode, registry: &MetricsRegistry) {
    let g = generators::random_regular(64, 4, &mut seeded_rng(12)).unwrap();
    let n = g.node_count();
    for laziness in [0.0, 0.25] {
        writeln!(
            out,
            "# scenario walker masked={masked} n={n} laziness={laziness}"
        )
        .unwrap();
        let mut engine = MixingEngine::one_walker_per_node(&g).unwrap();
        engine.set_draw_mode(mode);
        engine.set_telemetry(Some(EngineTelemetry::register(registry)));
        let mut rng = seeded_rng(202);
        for round in 1..=6 {
            if masked {
                let mask = mask_for_round(n, round);
                engine.step_masked(laziness, &mask, &mut rng);
            } else {
                engine.step(laziness, &mut rng);
            }
            engine.ensure_buckets();
            record_round(
                out,
                round,
                engine.positions(),
                &engine.walkers_by_holder(),
                None,
            );
        }
        writeln!(out, "rng-draw {}", rng.gen::<u64>()).unwrap();
    }
}

fn trace_sharded_rounds(
    out: &mut String,
    shards: usize,
    mode: DrawMode,
    registry: &MetricsRegistry,
) {
    let g = generators::random_regular(90, 4, &mut seeded_rng(13)).unwrap();
    let n = g.node_count();
    let partition = if shards == 1 {
        Partition::single_shard(&g).unwrap()
    } else {
        Partition::new(&g, shards).unwrap()
    };
    for laziness in [0.0, 0.2] {
        writeln!(
            out,
            "# scenario sharded shards={shards} n={n} laziness={laziness}"
        )
        .unwrap();
        let mut engine = ShardedMixingEngine::one_walker_per_node(&g, &partition, 303).unwrap();
        engine.set_draw_mode(mode);
        engine.set_telemetry(Some(EngineTelemetry::register(registry)));
        for round in 1..=6 {
            let mut tap = StatsTap::default();
            engine.step(laziness, &mut tap);
            record_round(
                out,
                round,
                engine.positions(),
                &engine.walkers_by_holder(),
                Some((&tap.sent, &tap.load)),
            );
        }
        for s in 0..shards {
            writeln!(
                out,
                "rng-draw shard={s} {}",
                engine.shard_rng_mut(s).gen::<u64>()
            )
            .unwrap();
        }
    }
}

fn trace_stream_identity(out: &mut String) {
    writeln!(out, "# scenario stream-identity").unwrap();
    let mut base = seeded_rng(303);
    let mut shard0 = shard_stream(303, 0);
    writeln!(out, "base {}", base.gen::<u64>()).unwrap();
    writeln!(out, "shard0 {}", shard0.gen::<u64>()).unwrap();
}

fn build_instrumented_trace(mode: DrawMode, registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    trace_holder_rounds(&mut out, false, mode, registry);
    trace_holder_rounds(&mut out, true, mode, registry);
    trace_walker_rounds(&mut out, false, mode, registry);
    trace_walker_rounds(&mut out, true, mode, registry);
    trace_sharded_rounds(&mut out, 1, mode, registry);
    trace_sharded_rounds(&mut out, 3, mode, registry);
    trace_stream_identity(&mut out);
    out
}

fn check_instrumented_against_golden(mode: DrawMode, path: &str) {
    let registry = MetricsRegistry::new();
    let trace = build_instrumented_trace(mode, &registry);
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|_| panic!("{path} missing; bless via golden_round_traces first"));
    for (line_no, (got, want)) in trace.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "instrumented trace diverged from the golden file at line {}",
            line_no + 1
        );
    }
    assert_eq!(
        trace.lines().count(),
        golden.lines().count(),
        "instrumented trace length diverged from {path}"
    );
    // Guard against vacuous success: the telemetry must actually have seen
    // the rounds it was attached for.
    let rendered = registry.render();
    let rounds_line = rendered
        .lines()
        .find(|l| l.starts_with("counter ns_rounds_total "))
        .expect("rounds counter rendered");
    let rounds: u64 = rounds_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(rounds >= 6 * 12, "telemetry saw only {rounds} rounds");
}

#[test]
fn instrumented_engines_reproduce_the_golden_traces_bitwise() {
    check_instrumented_against_golden(DrawMode::Compat, GOLDEN_PATH);
}

#[test]
fn instrumented_fast_mode_reproduces_the_golden_traces_bitwise() {
    check_instrumented_against_golden(DrawMode::Fast, GOLDEN_FAST_PATH);
}

// ---------------------------------------------------------------------------
// Layer 2: proptest zoo — bare vs instrumented twins on random graphs.
// ---------------------------------------------------------------------------

/// Everything observable about a finished sharded run: positions, holder
/// bucket orders, cumulative sent counts and one post-run draw per shard
/// RNG (so any extra stream consumption by telemetry shows up).
type RunState = (Vec<u32>, Vec<Vec<usize>>, Vec<u32>, Vec<u64>);

fn run_sharded(
    graph: &Graph,
    partition: &Partition,
    mode: DrawMode,
    masked: bool,
    rounds: usize,
    laziness: f64,
    registry: Option<&MetricsRegistry>,
) -> RunState {
    let n = graph.node_count();
    let mut engine = ShardedMixingEngine::one_walker_per_node(graph, partition, 7077).unwrap();
    engine.set_draw_mode(mode);
    if let Some(registry) = registry {
        engine.set_telemetry(Some(EngineTelemetry::register(registry)));
    }
    for round in 1..=rounds {
        if masked {
            let mask = mask_for_round(n, round);
            engine.step_masked(laziness, &mask, &mut ());
        } else {
            engine.step(laziness, &mut ());
        }
    }
    let positions = engine.positions().to_vec();
    let holders = engine.walkers_by_holder();
    let sent = engine.sent_counts().to_vec();
    let draws: Vec<u64> = (0..partition.shard_count())
        .map(|s| engine.shard_rng_mut(s).gen::<u64>())
        .collect();
    (positions, holders, sent, draws)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every combination of draw mode × shard count × masking, bare vs
    /// instrumented, on graphs from the whole strategy zoo: positions,
    /// holder orders, sent counts and RNG clocks must agree bitwise.
    #[test]
    fn telemetry_is_bitwise_inert_across_the_zoo(
        graph in strategies::graph_zoo(30..120),
        rounds in 2usize..7,
        laziness_pct in 0usize..40,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 16);
        prop_assume!(graph.find_isolated_node().is_none());
        let laziness = laziness_pct as f64 / 100.0;
        for shards in [1usize, 4] {
            let partition = if shards == 1 {
                Partition::single_shard(&graph).unwrap()
            } else {
                Partition::new(&graph, shards).unwrap()
            };
            for mode in [DrawMode::Compat, DrawMode::Fast] {
                for masked in [false, true] {
                    let bare =
                        run_sharded(&graph, &partition, mode, masked, rounds, laziness, None);
                    let registry = MetricsRegistry::new();
                    let instrumented = run_sharded(
                        &graph, &partition, mode, masked, rounds, laziness, Some(&registry),
                    );
                    prop_assert_eq!(
                        &bare, &instrumented,
                        "telemetry perturbed mode={:?} shards={} masked={}",
                        mode, shards, masked
                    );
                    // The instrumented twin really was instrumented.
                    prop_assert!(registry
                        .render()
                        .contains(&format!("counter ns_rounds_total {rounds}")));
                }
            }
        }
    }

    /// The service layer's quote is unchanged to the last mantissa bit by
    /// full coordinator telemetry (engine + accountant + audit counters).
    #[test]
    fn coordinator_quote_bits_survive_telemetry(
        graph in strategies::graph_zoo(30..100),
        rounds in 2usize..6,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 16);
        prop_assume!(graph.find_isolated_node().is_none());
        let partition = Partition::new(&graph, 2).unwrap();
        let params = AccountantParams::new(n, 1.0, 1e-6, 1e-6).unwrap();
        let run = |registry: Option<&MetricsRegistry>| {
            let config = CoordinatorConfig::all(404, usize::MAX);
            let mut coordinator: ShuffleCoordinator<'_, Vec<u8>> =
                ShuffleCoordinator::new(&graph, &partition, config).unwrap();
            if let Some(registry) = registry {
                coordinator.set_telemetry(Some(CoordinatorTelemetry::register(registry)));
            }
            coordinator
                .admit_population((0..n).map(|i| vec![i as u8]).collect())
                .unwrap();
            coordinator.begin_exchange().unwrap();
            coordinator.run_rounds(rounds).unwrap();
            let (worst, quote) = coordinator.live_quote(&params).unwrap();
            let positions = coordinator.engine().unwrap().positions().to_vec();
            (
                worst,
                quote.epsilon.to_bits(),
                quote.delta.to_bits(),
                coordinator.report_count(),
                positions,
            )
        };
        let bare = run(None);
        let registry = MetricsRegistry::new();
        let instrumented = run(Some(&registry));
        prop_assert_eq!(bare, instrumented);
        prop_assert!(registry
            .render()
            .contains(&format!("counter ns_admit_reports_total {n}")));
    }
}

// ---------------------------------------------------------------------------
// Layer 3: the durable runtime, fully instrumented, plus the nsctl surface.
// ---------------------------------------------------------------------------

fn scenario_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ns_observability").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scenario dir");
    dir
}

/// Runs the same durable scenario in `dir`, instrumented or bare, and
/// returns its observable end state.
fn durable_run(
    dir: &std::path::Path,
    graph: &Graph,
    partition: &Partition,
    instrument: bool,
) -> (usize, Vec<u32>, u64, u64) {
    let config = CoordinatorConfig::all(505, usize::MAX);
    let durable = DurableConfig {
        group_commit: 2,
        snapshot_every: 3,
    };
    let n = graph.node_count();
    let params = AccountantParams::new(n, 1.0, 1e-6, 1e-6).unwrap();
    let mut store = DurableCoordinator::create(graph, partition, config, durable, dir).unwrap();
    let registry = MetricsRegistry::new();
    if instrument {
        store.attach_telemetry(&registry, Some(params));
    }
    store
        .admit_population((0..n).map(|i| vec![i as u8]).collect())
        .unwrap();
    store.begin_exchange().unwrap();
    // One deliberately refused batch, so the audit log must carry both
    // decision kinds.
    assert!(store.admit(vec![(0, vec![0xEE])]).is_err());
    store.run_rounds(7).unwrap();
    store.flush_observability().unwrap();
    let (_, quote) = store.live_quote(&params).unwrap();
    (
        store.round(),
        store.coordinator().engine().unwrap().positions().to_vec(),
        quote.epsilon.to_bits(),
        quote.delta.to_bits(),
    )
}

#[test]
fn durable_telemetry_is_inert_and_exports_a_valid_trace() {
    let graph = generators::random_regular(48, 4, &mut seeded_rng(99)).unwrap();
    let partition = Partition::new(&graph, 2).unwrap();
    let bare_dir = scenario_dir("bare");
    let obs_dir = scenario_dir("instrumented");
    let bare = durable_run(&bare_dir, &graph, &partition, false);
    let instrumented = durable_run(&obs_dir, &graph, &partition, true);
    assert_eq!(bare, instrumented, "telemetry perturbed the durable run");

    // The bare run exported nothing; the instrumented run exported a
    // schema-valid trace carrying both admission decision kinds, the
    // per-round records, and a rendered metrics table.
    assert!(!bare_dir.join(TRACE_FILE).exists());
    let trace = std::fs::read_to_string(obs_dir.join(TRACE_FILE)).unwrap();
    let events = ns_obs::schema::validate_jsonl(&trace).expect("trace validates");
    assert!(
        events >= 9,
        "expected admits + 7 rounds, got {events} events"
    );
    assert!(trace.contains("\"ev\": \"round\""));
    assert!(trace.contains("\"accepted\": true"));
    assert!(trace.contains("\"accepted\": false"));
    assert!(trace.contains("\"reason\": \"exchange-started\""));
    let metrics = std::fs::read_to_string(obs_dir.join(METRICS_FILE)).unwrap();
    for name in [
        "histogram ns_wal_append_ns",
        "histogram ns_wal_fsync_ns",
        "histogram ns_round_decide_ns",
        "counter ns_admit_batches_total",
        "gauge ns_wal_len_bytes",
    ] {
        assert!(
            metrics.contains(name),
            "metrics.txt missing {name}:\n{metrics}"
        );
    }
}

#[test]
fn nsctl_smokes_against_a_demo_run() {
    let dir = scenario_dir("nsctl");
    let nsctl = env!("CARGO_BIN_EXE_nsctl");
    let demo = std::process::Command::new(nsctl)
        .args(["demo", dir.to_str().unwrap()])
        .output()
        .expect("spawn nsctl demo");
    assert!(
        demo.status.success(),
        "nsctl demo failed: {}",
        String::from_utf8_lossy(&demo.stderr)
    );
    let stats = std::process::Command::new(nsctl)
        .args(["stats", dir.to_str().unwrap()])
        .output()
        .expect("spawn nsctl stats");
    assert!(
        stats.status.success(),
        "nsctl stats failed: {}",
        String::from_utf8_lossy(&stats.stderr)
    );
    let out = String::from_utf8_lossy(&stats.stdout);
    for needle in [
        "schema ok",
        "round rate:",
        "quote trajectory:",
        "wal lag:",
        "histogram ns_wal_fsync_ns",
    ] {
        assert!(
            out.contains(needle),
            "nsctl stats output missing {needle:?}:\n{out}"
        );
    }
}
