//! End-to-end, round-based simulation of network shuffling.
//!
//! This module ties the pieces together exactly as in Figure 3 of the paper:
//!
//! 1. the curator generates her envelope key pair;
//! 2. every user randomizes her value (the caller supplies the already
//!    randomized payloads, so any [`ns_dp::LocalRandomizer`] can be used),
//!    seals it for the curator and becomes the initial holder of her own
//!    report;
//! 3. for `t` rounds, every held report is relayed to a uniformly random
//!    neighbour (synchronous rounds: all sends of a round are collected
//!    before any delivery, so a report moves exactly once per round);
//! 4. at the final round every user uploads according to the chosen protocol
//!    (`A_all` or `A_single`), and the curator decrypts and aggregates.
//!
//! Since the batched-engine refactor, the exchange phase is executed by
//! [`ns_graph::mixing_engine::MixingEngine`] over struct-of-arrays state:
//! the curator-sealed envelopes live in a flat arena keyed by report id
//! (= origin), the engine moves report ids between holders with counting-sort
//! routing, and the Table 3 traffic metrics stream out of the engine's
//! [`RoundObserver`](ns_graph::mixing_engine::RoundObserver) hook instead of
//! being collected per client afterwards.  The historical per-client
//! message-passing loop — one [`Client`](crate::protocol::client::Client) object per user, with
//! per-hop end-to-end envelopes — is preserved verbatim in
//! [`mod@reference`]; it is the
//! semantic baseline the engine is tested against (same seed, identical
//! submissions and metrics) and the comparison subject for the engine
//! benchmarks.
//!
//! Holder-order rounds in the engine consume the RNG draw-for-draw like the
//! reference loop, so the two paths produce bit-identical outcomes for any
//! `(graph, seed, rounds, laziness, protocol)`.

use crate::crypto::Envelope;
use crate::error::{Error, Result};
use crate::metrics::{TrafficMetrics, TrafficRecorder};
use crate::protocol::client::{FinalizeChoice, FinalizePolicy, SealedSubmission};
use crate::protocol::ProtocolKind;
use crate::report::Report;
use crate::server::{CollectedReports, Curator};
use ns_graph::mixing_engine::MixingEngine;
use ns_graph::rng::SimRng;
use ns_graph::walk::{validate_laziness, WalkConfig};
use ns_graph::Graph;
use rand_chacha::rand_core::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of one protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of communication rounds `t` before reporting to the curator.
    pub rounds: usize,
    /// Per-round probability that a report stays at its holder (lazy walk,
    /// Section 4.5); 0 for the plain protocol.
    pub laziness: f64,
    /// Which reporting protocol the users run.
    pub protocol: ProtocolKind,
    /// Seed for the simulation RNG (reports' walks and final-round choices).
    pub seed: u64,
}

impl SimulationConfig {
    /// A plain `A_all` run with the given number of rounds.
    pub fn all(rounds: usize, seed: u64) -> Self {
        SimulationConfig {
            rounds,
            laziness: 0.0,
            protocol: ProtocolKind::All,
            seed,
        }
    }

    /// A plain `A_single` run with the given number of rounds.
    pub fn single(rounds: usize, seed: u64) -> Self {
        SimulationConfig {
            rounds,
            laziness: 0.0,
            protocol: ProtocolKind::Single,
            seed,
        }
    }

    /// Validates the configuration (shared laziness-domain rule from the
    /// graph substrate).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if `laziness ∉ [0, 1)`.
    pub fn validate(&self) -> Result<()> {
        validate_laziness(self.laziness).map_err(Error::InvalidConfiguration)
    }

    /// The walk configuration of the exchange phase.
    pub fn walk(&self) -> WalkConfig {
        WalkConfig::lazy(self.rounds, self.laziness)
    }
}

/// Result of one protocol run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome<P> {
    /// What the curator collected (decrypted submissions).
    pub collected: CollectedReports<P>,
    /// Traffic and memory measurements for the run.
    pub metrics: TrafficMetrics,
}

fn validate_run_inputs<P>(
    graph: &Graph,
    payloads: &[P],
    config: &SimulationConfig,
) -> Result<usize> {
    config.validate()?;
    let n = graph.node_count();
    if n == 0 {
        return Err(ns_graph::GraphError::EmptyGraph.into());
    }
    if let Some(u) = graph.find_isolated_node() {
        return Err(ns_graph::GraphError::IsolatedNode(u).into());
    }
    if payloads.len() != n {
        return Err(Error::InvalidConfiguration(format!(
            "expected {n} payloads (one per user), got {}",
            payloads.len()
        )));
    }
    Ok(n)
}

/// Runs one complete network-shuffling protocol execution on the batched
/// mixing engine.
///
/// `payloads[i]` is user `i`'s already locally-randomized report payload;
/// `make_dummy` produces a dummy payload for `A_single` users who end the
/// exchange phase empty-handed (it is ignored under `A_all`).
///
/// Report `i` is sealed for the curator once, stored in a flat arena at
/// index `i`, and only its *id* moves between holders during the exchange
/// phase.  The per-hop end-to-end envelopes of the wire protocol are not
/// materialized here — routing is correct by construction inside the engine;
/// the full two-layer envelope exchange (including misdelivery detection)
/// is exercised by [`reference::run_protocol_reference`] and the client
/// unit tests.
///
/// # Errors
///
/// * graph validation errors (empty graph, isolated node),
/// * [`Error::InvalidConfiguration`] if `payloads.len() != n` or the config
///   is invalid.
pub fn run_protocol<P: Clone>(
    graph: &Graph,
    payloads: Vec<P>,
    config: SimulationConfig,
    make_dummy: impl FnMut(&mut SimRng) -> P,
) -> Result<SimulationOutcome<P>> {
    run_protocol_inner(graph, payloads, config, None, make_dummy)
}

/// [`run_protocol`] under a realized outage schedule: round `t` of the
/// exchange phase runs with `outages.mask(t)` — a report whose chosen
/// recipient is unavailable stays put, and the failed delivery is not
/// counted as traffic.  With a fully-available schedule this reproduces
/// [`run_protocol`] bit for bit (same RNG stream, same submissions, same
/// metrics); see `tests/churn.rs`.
///
/// # Errors
///
/// Same as [`run_protocol`], plus [`Error::InvalidConfiguration`] if the
/// schedule's node count differs from the graph's.
pub fn run_protocol_under_outages<P: Clone>(
    graph: &Graph,
    payloads: Vec<P>,
    config: SimulationConfig,
    outages: &crate::faults::OutageSchedule,
    make_dummy: impl FnMut(&mut SimRng) -> P,
) -> Result<SimulationOutcome<P>> {
    if outages.node_count() != graph.node_count() {
        return Err(Error::InvalidConfiguration(format!(
            "outage schedule covers {} users but the graph has {}",
            outages.node_count(),
            graph.node_count()
        )));
    }
    run_protocol_inner(graph, payloads, config, Some(outages), make_dummy)
}

fn run_protocol_inner<P: Clone>(
    graph: &Graph,
    payloads: Vec<P>,
    config: SimulationConfig,
    outages: Option<&crate::faults::OutageSchedule>,
    mut make_dummy: impl FnMut(&mut SimRng) -> P,
) -> Result<SimulationOutcome<P>> {
    let n = validate_run_inputs(graph, &payloads, &config)?;
    let mut rng = SimRng::seed_from_u64(config.seed);

    // Key setup (Figure 3): the curator's envelope key pair.  Per-user
    // end-to-end keys only exist on the wire; the arena path has no
    // per-hop envelopes to seal with them.
    let curator = Curator::new();

    // Local randomization: report i sits at arena slot i, sealed once.
    let mut arena: Vec<Option<Envelope<Report<P>>>> = payloads
        .into_iter()
        .enumerate()
        .map(|(origin, payload)| {
            Some(Envelope::seal(
                curator.public_key(),
                Report::genuine(origin, payload),
            ))
        })
        .collect();

    // Exchange phase: batched holder-order rounds, metrics streamed.
    let mut engine = MixingEngine::one_walker_per_node(graph)?;
    let mut recorder = TrafficRecorder::new(n);
    match outages {
        None => engine.run_holder_observed(config.walk(), &mut rng, &mut recorder)?,
        Some(schedule) => {
            for t in 0..config.rounds {
                engine.step_holder_masked(
                    config.laziness,
                    schedule.mask(t),
                    &mut rng,
                    &mut recorder,
                );
            }
        }
    }

    // Final round: submissions stream to the curator, holders in user order
    // (no intermediate submission buffer).
    engine.ensure_buckets();
    let policy: FinalizePolicy = config.protocol.into();
    let collected = curator.collect_from((0..n).map(|submitter| {
        let held = engine.held_by(submitter);
        let reports = match policy.choose(held.len(), &mut rng) {
            FinalizeChoice::All => held
                .iter()
                .map(|&report| {
                    arena[report as usize]
                        .take()
                        .expect("a report is submitted once")
                })
                .collect(),
            FinalizeChoice::Dummy => {
                let dummy = Report::dummy(submitter, make_dummy(&mut rng));
                vec![Envelope::seal(curator.public_key(), dummy)]
            }
            FinalizeChoice::Pick(index) => {
                vec![arena[held[index] as usize]
                    .take()
                    .expect("a report is submitted once")]
            }
        };
        SealedSubmission { submitter, reports }
    }))?;
    let metrics = recorder.into_metrics(collected.report_count());
    Ok(SimulationOutcome { collected, metrics })
}

/// Convenience wrapper: runs the protocol with payloads produced by applying
/// a local randomizer to raw per-user values.
///
/// The randomizer is applied with an RNG derived from `config.seed`, so the
/// whole experiment remains reproducible from a single seed.
///
/// # Errors
///
/// Propagates randomizer and simulation errors.
pub fn run_protocol_with_randomizer<A, X>(
    graph: &Graph,
    values: &[X],
    randomizer: &A,
    config: SimulationConfig,
    dummy_value: &X,
) -> Result<SimulationOutcome<A::Output>>
where
    A: ns_dp::LocalRandomizer<Input = X>,
    A::Output: Clone,
{
    let n = graph.node_count();
    if values.len() != n {
        return Err(Error::InvalidConfiguration(format!(
            "expected {n} values (one per user), got {}",
            values.len()
        )));
    }
    let mut randomize_rng = SimRng::seed_from_u64(config.seed ^ 0x5eed_0f0a_1100_u64);
    let mut payloads = Vec::with_capacity(n);
    for value in values {
        payloads.push(randomizer.randomize(value, &mut randomize_rng)?);
    }
    // Dummy payloads are fresh randomizations of the dummy value, as in
    // Algorithm 2 line 10 (`A_ldp(0)`).
    let dummy_seed = config.seed ^ 0xd0_0d1e5_u64;
    let mut dummy_rng = SimRng::seed_from_u64(dummy_seed);
    run_protocol(graph, payloads, config, move |_rng| {
        randomizer
            .randomize(dummy_value, &mut dummy_rng)
            .expect("dummy value must be in the randomizer's domain")
    })
}

/// Estimates, by Monte-Carlo simulation, the expected number of users that
/// hold no report after `rounds` rounds — the number of dummy reports
/// `A_single` will inject (the paper reports 7,080 for the Twitch graph).
///
/// # Errors
///
/// Propagates engine construction errors.
pub fn expected_empty_holders(
    graph: &Graph,
    rounds: usize,
    laziness: f64,
    trials: usize,
    seed: u64,
) -> Result<f64> {
    let mut total_empty = 0usize;
    for trial in 0..trials.max(1) {
        let mut rng = SimRng::seed_from_u64(seed.wrapping_add(trial as u64));
        let mut engine = MixingEngine::one_walker_per_node(graph)?;
        engine.run(WalkConfig::lazy(rounds, laziness), &mut rng)?;
        total_empty += engine.load_vector().iter().filter(|&&l| l == 0).count();
    }
    Ok(total_empty as f64 / trials.max(1) as f64)
}

/// The historical per-client simulation, preserved as the semantic baseline.
///
/// One [`Client`](crate::protocol::client::Client) object per user, a fresh `in_flight` vector of doubly-
/// enveloped messages per round, and per-message routing — exactly the wire
/// protocol of Section 4.4, at the cost of an allocation-heavy hot loop.
/// The batched engine path in [`run_protocol`] is required (and tested) to
/// reproduce this loop's outcomes bit for bit; benchmarks measure its
/// speedup against this baseline.
pub mod reference {
    use super::*;
    use crate::crypto::{KeyPair, Pki};
    use crate::protocol::client::Client;

    /// Runs the protocol through the per-client message-passing loop.
    ///
    /// Same contract as [`run_protocol`]; kept for parity tests, benchmarks
    /// and as executable documentation of the wire protocol.
    ///
    /// # Errors
    ///
    /// Same as [`run_protocol`].
    pub fn run_protocol_reference<P: Clone>(
        graph: &Graph,
        payloads: Vec<P>,
        config: SimulationConfig,
        mut make_dummy: impl FnMut(&mut SimRng) -> P,
    ) -> Result<SimulationOutcome<P>> {
        let n = validate_run_inputs(graph, &payloads, &config)?;
        let mut rng = SimRng::seed_from_u64(config.seed);

        // Key setup (Figure 3): curator + one end-to-end key pair per user.
        let curator = Curator::new();
        let mut pki = Pki::new();
        pki.register_curator(curator.public_key());
        let user_keys: Vec<KeyPair> = (0..n).map(|_| KeyPair::generate()).collect();
        for key in &user_keys {
            pki.register_user(key.public);
        }

        // Client construction and local randomization.
        let mut clients: Vec<Client<P>> = Vec::with_capacity(n);
        for (id, payload) in payloads.into_iter().enumerate() {
            let mut client = Client::new(
                id,
                user_keys[id],
                curator.public_key(),
                graph.neighbors(id).iter().map(|&v| v as usize).collect(),
            )?;
            client.submit_own_report(payload);
            clients.push(client);
        }

        // Synchronous relay rounds.
        let peer_key = |id: usize| user_keys[id].public;
        for _ in 0..config.rounds {
            let mut in_flight = Vec::with_capacity(n);
            for client in clients.iter_mut() {
                in_flight.extend(client.relay_round(peer_key, config.laziness, &mut rng));
            }
            for (destination, message) in in_flight {
                clients
                    .get_mut(destination)
                    .ok_or(Error::UnknownUser(destination))?
                    .receive(message)?;
            }
        }

        // Final round: submissions to the curator.
        let policy = config.protocol.into();
        let mut submissions = Vec::with_capacity(n);
        let mut messages_per_user = Vec::with_capacity(n);
        let mut peak_reports_per_user = Vec::with_capacity(n);
        for client in clients.iter_mut() {
            submissions.push(client.finalize(policy, &mut make_dummy, &mut rng));
            messages_per_user.push(client.messages_sent());
            peak_reports_per_user.push(client.peak_held());
        }

        let collected = curator.collect(submissions)?;
        let metrics = TrafficMetrics {
            user_count: n,
            rounds: config.rounds,
            messages_per_user,
            peak_reports_per_user,
            server_reports: collected.report_count(),
        };
        Ok(SimulationOutcome { collected, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdversaryView;
    use ns_dp::mechanisms::RandomizedResponse;
    use ns_graph::generators;

    #[test]
    fn all_protocol_conserves_reports() {
        let g = generators::random_regular(60, 4, &mut ns_graph::rng::seeded_rng(1)).unwrap();
        let payloads: Vec<u32> = (0..60).collect();
        let outcome = run_protocol(&g, payloads, SimulationConfig::all(15, 7), |_| 999).unwrap();
        // Every genuine report reaches the curator exactly once.
        assert_eq!(outcome.collected.report_count(), 60);
        assert_eq!(outcome.collected.dummy_count(), 0);
        let mut origins: Vec<usize> = outcome
            .collected
            .reports_with_submitter()
            .map(|(_, r)| r.origin)
            .collect();
        origins.sort_unstable();
        assert_eq!(origins, (0..60).collect::<Vec<_>>());
        // Payload i was produced by user i in this setup.
        for (_, report) in outcome.collected.reports_with_submitter() {
            assert_eq!(report.payload as usize, report.origin);
        }
    }

    #[test]
    fn single_protocol_sends_exactly_one_report_per_user() {
        let g = generators::random_regular(50, 4, &mut ns_graph::rng::seeded_rng(2)).unwrap();
        let payloads: Vec<u32> = (0..50).collect();
        let outcome =
            run_protocol(&g, payloads, SimulationConfig::single(12, 3), |_| 12345).unwrap();
        assert_eq!(outcome.collected.report_count(), 50);
        assert_eq!(outcome.collected.submissions().len(), 50);
        for s in outcome.collected.submissions() {
            assert_eq!(s.len(), 1);
        }
        // There are both dummies (users who held nothing) and dropped
        // genuine reports (users who held several).
        let dummies = outcome.collected.dummy_count();
        assert!(dummies > 0, "expected some dummies after mixing");
        let genuine = outcome.collected.report_count() - dummies;
        assert!(genuine < 50);
        for (_, report) in outcome.collected.reports_with_submitter() {
            if report.is_dummy {
                assert_eq!(report.payload, 12345);
            }
        }
    }

    #[test]
    fn metrics_reflect_traffic_and_memory() {
        let g = generators::random_regular(40, 4, &mut ns_graph::rng::seeded_rng(3)).unwrap();
        let rounds = 10;
        let payloads: Vec<u32> = vec![0; 40];
        let outcome = run_protocol(&g, payloads, SimulationConfig::all(rounds, 5), |_| 0).unwrap();
        let m = &outcome.metrics;
        assert_eq!(m.user_count, 40);
        assert_eq!(m.rounds, rounds);
        // Report conservation: total messages = 40 reports * rounds moves.
        assert_eq!(m.total_messages(), 40 * rounds);
        assert!(m.max_peak_reports() >= 1);
        assert!(m.mean_peak_reports() >= 1.0);
        assert_eq!(m.server_reports, 40);
    }

    #[test]
    fn zero_rounds_means_no_anonymity() {
        // Without exchange rounds every user submits her own report, so the
        // adversary links every report to its origin.
        let g = generators::complete(10).unwrap();
        let payloads: Vec<u32> = (0..10).collect();
        let outcome = run_protocol(&g, payloads, SimulationConfig::all(0, 1), |_| 0).unwrap();
        let view = AdversaryView::from_submissions(outcome.collected.submissions());
        let stats = view.linkage_stats(&g);
        assert_eq!(stats.returned_to_origin, 10);
        assert!((stats.return_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixing_breaks_most_origin_links() {
        let g = generators::random_regular(100, 6, &mut ns_graph::rng::seeded_rng(4)).unwrap();
        let payloads: Vec<u32> = (0..100).collect();
        let outcome = run_protocol(&g, payloads, SimulationConfig::all(40, 11), |_| 0).unwrap();
        let view = AdversaryView::from_submissions(outcome.collected.submissions());
        let stats = view.linkage_stats(&g);
        // After mixing, the return rate should be near 1/n = 1%, certainly
        // far below 20%.
        assert!(
            stats.return_rate() < 0.2,
            "return rate = {}",
            stats.return_rate()
        );
    }

    #[test]
    fn configuration_and_input_validation() {
        let g = generators::complete(5).unwrap();
        let bad_config = SimulationConfig {
            laziness: 1.0,
            ..SimulationConfig::all(3, 0)
        };
        assert!(run_protocol(&g, vec![0u32; 5], bad_config, |_| 0).is_err());
        assert!(run_protocol(&g, vec![0u32; 4], SimulationConfig::all(3, 0), |_| 0).is_err());
        let isolated = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(
            run_protocol(&isolated, vec![0u32; 3], SimulationConfig::all(3, 0), |_| 0).is_err()
        );
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(run_protocol(
            &empty,
            Vec::<u32>::new(),
            SimulationConfig::all(3, 0),
            |_| 0
        )
        .is_err());
        // The reference loop enforces the same contract.
        assert!(reference::run_protocol_reference(&g, vec![0u32; 5], bad_config, |_| 0).is_err());
        assert!(reference::run_protocol_reference(
            &empty,
            Vec::<u32>::new(),
            SimulationConfig::all(3, 0),
            |_| 0
        )
        .is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::random_regular(30, 4, &mut ns_graph::rng::seeded_rng(5)).unwrap();
        let run = |seed| {
            let payloads: Vec<u32> = (0..30).collect();
            let outcome =
                run_protocol(&g, payloads, SimulationConfig::all(8, seed), |_| 0).unwrap();
            outcome
                .collected
                .reports_with_submitter()
                .map(|(s, r)| (s, r.origin))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn randomizer_wrapper_applies_ldp_before_shuffling() {
        let g = generators::random_regular(40, 4, &mut ns_graph::rng::seeded_rng(6)).unwrap();
        let rr = RandomizedResponse::new(3, 2.0).unwrap();
        let values: Vec<usize> = (0..40).map(|i| i % 3).collect();
        let outcome = run_protocol_with_randomizer(
            &g,
            &values,
            &rr,
            SimulationConfig::single(10, 9),
            &0usize,
        )
        .unwrap();
        assert_eq!(outcome.collected.report_count(), 40);
        for payload in outcome.collected.all_payloads() {
            assert!(*payload < 3);
        }
        // Mismatched value count is rejected.
        assert!(run_protocol_with_randomizer(
            &g,
            &values[..10],
            &rr,
            SimulationConfig::single(10, 9),
            &0usize,
        )
        .is_err());
    }

    #[test]
    fn expected_empty_holders_matches_occupancy_heuristic() {
        // After good mixing on a regular graph, the load is approximately a
        // balls-into-bins allocation, so the empty fraction is ≈ (1-1/n)^n
        // ≈ e^{-1} ≈ 0.368.
        let g = generators::random_regular(200, 6, &mut ns_graph::rng::seeded_rng(7)).unwrap();
        let empty = expected_empty_holders(&g, 60, 0.0, 5, 123).unwrap();
        let fraction = empty / 200.0;
        assert!(
            (fraction - 0.368).abs() < 0.08,
            "empty fraction = {fraction}"
        );
    }

    /// The engine path must reproduce the reference loop bit for bit; the
    /// exhaustive version (more sizes, both protocols, metrics) lives in
    /// `tests/engine_parity.rs`.
    #[test]
    fn engine_path_matches_reference_loop() {
        let g = generators::random_regular(48, 4, &mut ns_graph::rng::seeded_rng(8)).unwrap();
        for config in [
            SimulationConfig::all(12, 21),
            SimulationConfig::single(12, 21),
        ] {
            let payloads: Vec<u32> = (0..48).collect();
            let engine = run_protocol(&g, payloads.clone(), config, |_| 7).unwrap();
            let reference = reference::run_protocol_reference(&g, payloads, config, |_| 7).unwrap();
            let view = |o: &SimulationOutcome<u32>| {
                o.collected
                    .reports_with_submitter()
                    .map(|(s, r)| (s, r.origin, r.is_dummy, r.payload))
                    .collect::<Vec<_>>()
            };
            assert_eq!(view(&engine), view(&reference));
            assert_eq!(engine.metrics, reference.metrics);
        }
    }
}
