//! `ns-obs` — the workspace's telemetry layer.
//!
//! Everything the runtime reports about itself flows through this crate:
//!
//! * [`MetricsRegistry`] — preregistered, lock-free metric slots
//!   (monotonic [`Counter`]s, [`Gauge`]s, fixed-bucket log2
//!   [`Histogram`]s).  Registration takes a mutex and may allocate;
//!   **recording never does** — every hot-path update is one relaxed
//!   atomic op on a slot created at setup time, so the counting-allocator
//!   audits in `ns-bench` hold with telemetry enabled.
//! * [`Clock`] — the pluggable time source behind span timers: a real
//!   monotonic clock for production and a deterministic [`FakeClock`]
//!   for tests, so timing-dependent telemetry is testable bit for bit.
//! * [`TraceWriter`] — a bounded ring of fixed-size structured events
//!   ([`TraceEvent`]), recorded allocation-free and serialized to JSONL
//!   only on explicit [`TraceWriter::flush_to`].  The line schema is
//!   documented in the README and machine-checked by [`schema`].
//! * [`human`] — the grep-stable `[ns:<topic>]` line renderer the
//!   examples print progress through (see the [`say!`] macro).
//!
//! The design invariant the rest of the workspace leans on: telemetry is
//! **inert**.  Observers only read state and write into their own atomic
//! slots — they never touch RNG streams, engine state or control flow —
//! so a run with full telemetry attached is bitwise identical to a run
//! with none (pinned by `tests/observability.rs` against the golden
//! round traces).
//!
//! Environment knobs (consumed by the durable runtime and the bench
//! bins, centralized here): `NS_OBS` enables telemetry where it is
//! opt-in, `NS_OBS_TRACE` overrides the trace output path, `NS_OBS_RING`
//! sizes the event ring (default [`trace::DEFAULT_RING_CAPACITY`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod human;
pub mod registry;
pub mod schema;
pub mod trace;

pub use clock::{Clock, FakeClock};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, SpanTimer};
pub use trace::{TraceEvent, TraceWriter};

/// Whether telemetry is enabled by the environment (`NS_OBS=1`).
///
/// Components where telemetry is opt-in (the durable runtime, the bench
/// bins) consult this once at setup; components that receive an explicit
/// registry ignore it.
pub fn env_enabled() -> bool {
    matches!(
        std::env::var("NS_OBS").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// Ring capacity for new [`TraceWriter`]s: `NS_OBS_RING` if set and
/// positive, [`trace::DEFAULT_RING_CAPACITY`] otherwise.
pub fn env_ring_capacity() -> usize {
    std::env::var("NS_OBS_RING")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(trace::DEFAULT_RING_CAPACITY)
}

/// Trace output path override (`NS_OBS_TRACE`), if any.
pub fn env_trace_path() -> Option<std::path::PathBuf> {
    std::env::var_os("NS_OBS_TRACE").map(std::path::PathBuf::from)
}
