//! Private mean estimation (the paper's Section 5.6 / Figure 9 workload).
//!
//! ```text
//! cargo run --release --example mean_estimation
//! ```
//!
//! Users hold high-dimensional unit vectors drawn from a two-component
//! Gaussian mixture, perturb them with the PrivUnit ε₀-LDP mechanism, and
//! exchange them by network shuffling before the curator averages them.
//! The example reports the privacy–utility point (central ε, expected
//! squared error) for both protocols at a few values of ε₀, i.e. a small
//! slice of Figure 9.

use network_shuffle::prelude::*;
use ns_datasets::{Dataset, MeanEstimationWorkload, WorkloadConfig};
use ns_obs::say;

const TOPIC: &str = "mean_estimation";

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let seed = 11;

    // Twitch stand-in, scaled down 8x and with d = 32 instead of 200 so the
    // example runs in a few seconds; pass --full in your own experiments via
    // the ns-bench fig9 binary for the paper-scale run.
    let generated = Dataset::Twitch.generate_scaled(8, seed)?;
    let graph = &generated.graph;
    let n = graph.node_count();
    let workload = MeanEstimationWorkload::generate(&WorkloadConfig {
        dimension: 32,
        ..WorkloadConfig::paper_defaults(n, seed)
    });
    say!(
        TOPIC,
        "population n = {n}, dimension d = {}",
        workload.dimension()
    );

    let accountant = NetworkShuffleAccountant::new(graph)?;
    let rounds = accountant.mixing_time();
    say!(TOPIC, "exchange rounds (mixing time): {rounds}\n");
    say!(
        TOPIC,
        "{:<10} {:>10} {:>14} {:>18}",
        "protocol",
        "eps_0",
        "central eps",
        "squared error"
    );

    for &epsilon_0 in &[1.0, 2.0, 4.0] {
        let params = AccountantParams::with_defaults(n, epsilon_0)?;
        for protocol in [ProtocolKind::All, ProtocolKind::Single] {
            let config = MeanEstimationConfig {
                epsilon_0,
                rounds,
                protocol,
                seed,
            };
            let result = run_mean_estimation(graph, &workload.data, &workload.dummy_pool, config)?;
            let central =
                accountant.central_guarantee(protocol, Scenario::Stationary, &params, rounds)?;
            say!(
                TOPIC,
                "{:<10} {:>10.2} {:>14.4} {:>18.6}",
                protocol.name(),
                epsilon_0,
                central.epsilon,
                result.squared_error
            );
        }
    }

    println!();
    say!(
        TOPIC,
        "expected shape (paper Figure 9): for a fixed central epsilon, A_all"
    );
    say!(
        TOPIC,
        "achieves a lower squared error than A_single on this workload."
    );
    Ok(())
}
